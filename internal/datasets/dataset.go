// Package datasets provides deterministic synthetic generators shaped
// after every dataset in the paper's evaluation (Section 5, Table 1):
// electrocardiograms, the Dutch power demand record, the gun-draw video
// track, respiration, Space-Shuttle Marotta-valve telemetry, and the GPS
// commute trajectory. Each generator plants anomalies at known positions
// so experiments have exact ground truth — the substitution for the
// proprietary/clinical recordings the paper used (see DESIGN.md §3).
package datasets

import (
	"math"
	"math/rand"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

// Dataset is a generated series with ground truth and the discretization
// parameters the paper used for its real counterpart.
type Dataset struct {
	Name   string
	Series []float64
	// Truth holds the planted anomaly intervals, most prominent first.
	Truth  []timeseries.Interval
	Params sax.Params // the paper's (window, PAA, alphabet) for this dataset
}

// TruthHit reports whether iv overlaps any ground-truth interval, allowing
// slack points of tolerance on each side of the truth intervals.
func (d *Dataset) TruthHit(iv timeseries.Interval, slack int) bool {
	for _, tr := range d.Truth {
		widened := timeseries.Interval{Start: tr.Start - slack, End: tr.End + slack}
		if iv.Overlaps(widened) {
			return true
		}
	}
	return false
}

// gaussian returns the value of a Gaussian bump centered at mu with the
// given width and amplitude.
func gaussian(x, mu, width, amp float64) float64 {
	d := (x - mu) / width
	return amp * math.Exp(-d*d/2)
}

// addNoise adds i.i.d. Gaussian noise of the given std in place.
func addNoise(ts []float64, std float64, rng *rand.Rand) {
	if std <= 0 {
		return
	}
	for i := range ts {
		ts[i] += rng.NormFloat64() * std
	}
}
