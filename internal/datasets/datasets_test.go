package datasets

import (
	"testing"

	"grammarviz/internal/timeseries"
)

func TestGenerateAllKnown(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d, err := Generate(name)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if d.Name != name {
				t.Errorf("Name = %q", d.Name)
			}
			if len(d.Series) < 1000 {
				t.Errorf("series too short: %d", len(d.Series))
			}
			if timeseries.HasNaN(d.Series) {
				t.Error("series contains NaN/Inf")
			}
			if err := d.Params.Validate(len(d.Series)); err != nil {
				t.Errorf("params invalid for series: %v", err)
			}
			if len(d.Truth) == 0 {
				t.Error("no ground truth planted")
			}
			for _, iv := range d.Truth {
				if !iv.Valid(len(d.Series)) {
					t.Errorf("truth interval %v out of bounds (n=%d)", iv, len(d.Series))
				}
			}
			// Signal must not be constant.
			s, err := timeseries.Describe(d.Series)
			if err != nil || s.Std == 0 {
				t.Errorf("degenerate series: %+v err=%v", s, err)
			}
		})
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("ecg0606")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("ecg0606")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatal("lengths differ")
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("series differ at %d", i)
		}
	}
	if len(a.Truth) != len(b.Truth) || a.Truth[0] != b.Truth[0] {
		t.Error("truth differs between runs")
	}
}

func TestECGAnomalyChangesShape(t *testing.T) {
	clean := ECG(ECGOptions{N: 3000, BeatLen: 150, Jitter: 0, Noise: 0, Anomalies: 0, Seed: 1})
	if len(clean.Truth) != 0 {
		t.Errorf("clean ECG has truth %v", clean.Truth)
	}
	dirty := ECG(ECGOptions{N: 3000, BeatLen: 150, Jitter: 0, Noise: 0, Anomalies: 1, Seed: 1})
	if len(dirty.Truth) != 1 {
		t.Fatalf("dirty ECG truth = %v", dirty.Truth)
	}
	iv := dirty.Truth[0]
	differs := false
	for i := iv.Start; i <= iv.End; i++ {
		if clean.Series[i] != dirty.Series[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("planted anomaly did not change the signal")
	}
	// Outside the anomaly (plus one beat of slack) the signals agree.
	for i := 0; i < iv.Start-150; i++ {
		if clean.Series[i] != dirty.Series[i] {
			t.Fatalf("signal differs before anomaly at %d", i)
		}
	}
}

func TestPowerDemandHolidays(t *testing.T) {
	d := PowerDemand(PowerOptions{
		Weeks: 4, PerDay: 96, Noise: 0,
		Holidays: []Holiday{{Week: 1, Day: 2}},
		Seed:     1,
	})
	if len(d.Truth) != 1 {
		t.Fatalf("truth = %v", d.Truth)
	}
	iv := d.Truth[0]
	wantStart := (7 + 2) * 96
	if iv.Start != wantStart || iv.Len() != 96 {
		t.Errorf("holiday interval %v, want start %d len 96", iv, wantStart)
	}
	// Holiday day stays at base load; the matching weekday next week peaks.
	holidayMax, normalMax := 0.0, 0.0
	for i := 0; i < 96; i++ {
		if v := d.Series[iv.Start+i]; v > holidayMax {
			holidayMax = v
		}
		if v := d.Series[iv.Start+7*96+i]; v > normalMax {
			normalMax = v
		}
	}
	if holidayMax > 0.5*normalMax {
		t.Errorf("holiday peak %v not suppressed vs normal %v", holidayMax, normalMax)
	}
}

func TestTruthHit(t *testing.T) {
	d := &Dataset{Truth: []timeseries.Interval{{Start: 100, End: 199}}}
	if !d.TruthHit(timeseries.Interval{Start: 150, End: 160}, 0) {
		t.Error("direct hit missed")
	}
	if !d.TruthHit(timeseries.Interval{Start: 210, End: 220}, 15) {
		t.Error("slack hit missed")
	}
	if d.TruthHit(timeseries.Interval{Start: 300, End: 310}, 10) {
		t.Error("false hit")
	}
}

func TestTrajectoryStructure(t *testing.T) {
	td, err := Trajectory(TrajectoryOptions{
		Days: 5, PointsPerLeg: 200, GPSNoise: 0.5, HilbertOrder: 8, Seed: 9,
	})
	if err != nil {
		t.Fatalf("Trajectory: %v", err)
	}
	if len(td.Series) != len(td.Points) {
		t.Errorf("series %d points %d", len(td.Series), len(td.Points))
	}
	if len(td.Truth) != 3 {
		t.Fatalf("truth = %v, want detour/fixloss/skiploop", td.Truth)
	}
	for i, iv := range td.Truth {
		if !iv.Valid(len(td.Series)) {
			t.Errorf("truth %d = %v out of bounds", i, iv)
		}
	}
	// Truth events must not overlap each other.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if td.Truth[i].Overlaps(td.Truth[j]) {
				t.Errorf("truth %d and %d overlap: %v %v", i, j, td.Truth[i], td.Truth[j])
			}
		}
	}
	// Hilbert values stay within the curve's range.
	for _, v := range td.Series {
		if v < 0 || v >= 65536 {
			t.Fatalf("Hilbert value %v out of range", v)
		}
	}
	if _, err := Trajectory(TrajectoryOptions{Days: 2, PointsPerLeg: 10, HilbertOrder: 0}); err == nil {
		t.Error("bad Hilbert order should error")
	}
}

func TestVideoAndTelemetryAndRespirationTruthShapes(t *testing.T) {
	v := Video(VideoOptions{N: 6000, CycleLen: 300, Noise: 0.5, Anomalies: 2, Seed: 3})
	if len(v.Truth) != 2 {
		t.Errorf("video truth = %v", v.Truth)
	}
	tk := Telemetry(TelemetryOptions{N: 5000, CycleLen: 500, Noise: 0.01, Anomalies: 1, Seed: 3})
	if len(tk.Truth) != 1 {
		t.Errorf("telemetry truth = %v", tk.Truth)
	}
	r := Respiration(RespirationOptions{N: 8000, BreathLen: 64, Noise: 0.01, Anomalies: 2, Seed: 3})
	if len(r.Truth) != 2 {
		t.Errorf("respiration truth = %v", r.Truth)
	}
}
