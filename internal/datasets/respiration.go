package datasets

import (
	"math"
	"math/rand"

	"grammarviz/internal/timeseries"
)

// RespirationOptions controls the synthetic respiration generator.
type RespirationOptions struct {
	N         int     // series length
	BreathLen int     // samples per breath
	Noise     float64 // sensor noise std
	Anomalies int     // number of planted apnea/regime-change events
	Seed      int64
}

// Respiration synthesizes a chest-expansion respiration signal (the NPRS
// records of Table 1): smooth breathing oscillation with slowly drifting
// amplitude, interrupted by planted regime changes — a shallow-and-fast
// breathing burst, the structural signature of the annotated anomalies in
// the original nocturnal polysomnography records.
func Respiration(opt RespirationOptions) *Dataset {
	rng := rand.New(rand.NewSource(opt.Seed))
	ts := make([]float64, opt.N)

	anomalyLen := opt.BreathLen * 2
	anomalous := chooseEvents(opt.N, anomalyLen, opt.Anomalies)

	phase := 0.0
	for i := 0; i < opt.N; i++ {
		inAnomaly := false
		for _, a := range anomalous {
			if i >= a.Start && i <= a.End {
				inAnomaly = true
				break
			}
		}
		freq := 2 * math.Pi / float64(opt.BreathLen)
		amp := 1 + 0.15*math.Sin(2*math.Pi*float64(i)/float64(opt.N/3+1))
		if inAnomaly {
			freq *= 3   // fast
			amp *= 0.35 // shallow
		}
		phase += freq
		ts[i] = amp * math.Sin(phase)
	}
	addNoise(ts, opt.Noise, rng)
	return &Dataset{Name: "respiration", Series: ts, Truth: anomalous}
}

// chooseEvents spreads k events of the given length evenly through the
// middle of a series of length n.
func chooseEvents(n, length, k int) []timeseries.Interval {
	if k <= 0 {
		return nil
	}
	out := make([]timeseries.Interval, 0, k)
	step := n / (k + 1)
	for i := 1; i <= k; i++ {
		start := i * step
		end := start + length - 1
		if end >= n {
			end = n - 1
		}
		if start < n {
			out = append(out, timeseries.Interval{Start: start, End: end})
		}
	}
	return out
}
