package datasets

import (
	"math"
	"math/rand"

	"grammarviz/internal/timeseries"
)

// Holiday marks one suppressed workday: Week is the 0-based week index,
// Day the weekday (0=Mon .. 4=Fri).
type Holiday struct {
	Week, Day int
}

// PowerOptions controls the synthetic power-demand generator.
type PowerOptions struct {
	Weeks    int     // number of weeks (the paper's record covers 52)
	PerDay   int     // samples per day (the Dutch record has 96: 15-minute readings)
	Noise    float64 // additive noise std relative to a unit-height daily peak
	Holidays []Holiday
	Seed     int64
}

// PowerDemand synthesizes a year of facility power demand shaped after the
// Dutch research-facility record of Figures 3 and 4: five weekday
// consumption peaks followed by a quiet weekend, repeated weekly, with
// planted national-holiday weeks in which one weekday's peak is missing
// (consumption stays at weekend level). The holiday days are the ground
// truth anomalies — exactly the structure RRA discovers in Figure 4.
func PowerDemand(opt PowerOptions) *Dataset {
	rng := rand.New(rand.NewSource(opt.Seed))
	week := 7 * opt.PerDay
	n := opt.Weeks * week
	ts := make([]float64, n)

	holiday := make(map[[2]int]bool, len(opt.Holidays))
	for _, h := range opt.Holidays {
		holiday[[2]int{h.Week, h.Day}] = true
	}

	var truth []timeseries.Interval
	for w := 0; w < opt.Weeks; w++ {
		for d := 0; d < 7; d++ {
			dayStart := w*week + d*opt.PerDay
			workday := d < 5
			suppressed := workday && holiday[[2]int{w, d}]
			for i := 0; i < opt.PerDay; i++ {
				x := float64(i) / float64(opt.PerDay)
				base := 0.18 // night / weekend load
				v := base
				if workday && !suppressed {
					// Morning ramp, midday plateau, evening fall.
					v += gaussian(x, 0.5, 0.16, 0.9) * (1 + 0.07*math.Sin(6*math.Pi*x))
				}
				ts[dayStart+i] = v
			}
			if suppressed {
				truth = append(truth, timeseries.Interval{
					Start: dayStart,
					End:   dayStart + opt.PerDay - 1,
				})
			}
		}
	}
	addNoise(ts, opt.Noise, rng)
	return &Dataset{Name: "power", Series: ts, Truth: truth}
}
