package datasets

import (
	"math"
	"math/rand"

	"grammarviz/internal/timeseries"
)

// ECGOptions controls the synthetic electrocardiogram generator.
type ECGOptions struct {
	N         int     // series length in samples
	BeatLen   int     // nominal samples per heartbeat
	Jitter    float64 // fractional RR-interval jitter (e.g. 0.03)
	Noise     float64 // additive noise std
	Wander    float64 // baseline-wander amplitude (breathing drift)
	Anomalies int     // number of planted anomalous beats
	// Subtle selects the qtdb-0606-style anomaly: a beat with a depressed
	// ST segment and flattened T wave but normal rhythm and QRS — the
	// "very subtle" anomaly of the paper's Figure 2. The default is a
	// full premature ventricular contraction with compensatory pause.
	Subtle bool
	// Artifacts plants brief electrode-noise glitches (8-14 samples of
	// high-frequency ripple). Ambulatory recordings are full of them;
	// they are symbolically rare (they attract rule-density minima) but
	// metrically similar to each other, so a distance-based detector is
	// not distracted. They are NOT added to Truth.
	Artifacts int
	Seed      int64
}

// ECG synthesizes an electrocardiogram: a sequence of P-QRS-T beats with
// slight RR jitter and measurement noise, with a configurable number of
// premature-ventricular-contraction–style anomalous beats (wide, high-
// amplitude QRS, absent P wave, inverted T) planted at evenly spread
// positions away from the series edges. The planted beats mirror the
// annotated anomaly of the paper's ECG figures (e.g. Figure 2's qtdb 0606
// ST-wave anomaly).
func ECG(opt ECGOptions) *Dataset {
	rng := rand.New(rand.NewSource(opt.Seed))
	ts := make([]float64, opt.N)
	nBeats := opt.N/opt.BeatLen + 2

	// Choose which beats are anomalous: evenly spread through the middle.
	anomalous := make(map[int]bool, opt.Anomalies)
	if opt.Anomalies > 0 {
		step := nBeats / (opt.Anomalies + 1)
		if step < 2 {
			step = 2
		}
		for k := 1; k <= opt.Anomalies; k++ {
			b := k * step
			if b >= 1 && b < nBeats-1 {
				anomalous[b] = true
			}
		}
	}

	var truth []timeseries.Interval
	pos := 0
	for beat := 0; pos < opt.N; beat++ {
		beatLen := int(float64(opt.BeatLen) * (1 + opt.Jitter*(rng.Float64()*2-1)))
		if beatLen < 8 {
			beatLen = 8
		}
		if anomalous[beat] && opt.Subtle {
			// ST-wave anomaly: normal rhythm, altered repolarization.
			writeSubtleBeat(ts, pos, beatLen)
			end := pos + beatLen - 1
			if end >= opt.N {
				end = opt.N - 1
			}
			truth = append(truth, timeseries.Interval{Start: pos, End: end})
			pos += beatLen
			continue
		}
		if anomalous[beat] {
			// A premature ventricular contraction arrives early (70% of
			// the nominal RR interval) and is followed by a compensatory
			// pause, so the rhythm as well as the morphology is broken.
			pvcLen := beatLen * 7 / 10
			pauseLen := beatLen - pvcLen + beatLen*4/10
			writePVCBeat(ts, pos, pvcLen)
			end := pos + pvcLen + pauseLen - 1
			if end >= opt.N {
				end = opt.N - 1
			}
			truth = append(truth, timeseries.Interval{Start: pos, End: end})
			pos += pvcLen + pauseLen
			continue
		}
		writeNormalBeat(ts, pos, beatLen)
		pos += beatLen
	}
	if opt.Artifacts > 0 {
		// Spread glitches through the series, away from planted anomalies.
		step := opt.N / (opt.Artifacts + 1)
		for k := 1; k <= opt.Artifacts; k++ {
			at := k*step + rng.Intn(opt.BeatLen/2)
			glitchLen := 8 + rng.Intn(7)
			if tooCloseToTruth(at, glitchLen, truth, opt.BeatLen) {
				continue
			}
			for i := 0; i < glitchLen && at+i < opt.N; i++ {
				// High-frequency ripple burst, similar across glitches.
				ts[at+i] += 0.35 * math.Sin(2.2*float64(i))
			}
		}
	}
	if opt.Wander > 0 {
		// Respiration-coupled baseline wander: two incommensurate slow
		// sinusoids, as seen in ambulatory recordings.
		p1 := 4.1 * float64(opt.BeatLen)
		p2 := 9.7 * float64(opt.BeatLen)
		ph1, ph2 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
		for i := range ts {
			x := float64(i)
			ts[i] += opt.Wander * (0.7*math.Sin(2*math.Pi*x/p1+ph1) + 0.3*math.Sin(2*math.Pi*x/p2+ph2))
		}
	}
	addNoise(ts, opt.Noise, rng)
	return &Dataset{Name: "ecg", Series: ts, Truth: truth}
}

// writeNormalBeat renders one P-QRS-T complex into ts[pos:pos+beatLen].
func writeNormalBeat(ts []float64, pos, beatLen int) {
	L := float64(beatLen)
	for i := 0; i < beatLen && pos+i < len(ts); i++ {
		x := float64(i) / L
		v := gaussian(x, 0.18, 0.03, 0.12) + // P wave
			gaussian(x, 0.38, 0.012, -0.18) + // Q dip
			gaussian(x, 0.42, 0.016, 1.0) + // R spike
			gaussian(x, 0.46, 0.014, -0.22) + // S dip
			gaussian(x, 0.68, 0.05, 0.28) // T wave
		ts[pos+i] += v
	}
}

// writeSubtleBeat renders the qtdb-0606-style anomalous beat: P and QRS
// as normal, but the ST segment is depressed and the T wave flattened and
// delayed — visible only as a changed shape between the S dip and the end
// of the beat.
func writeSubtleBeat(ts []float64, pos, beatLen int) {
	L := float64(beatLen)
	for i := 0; i < beatLen && pos+i < len(ts); i++ {
		x := float64(i) / L
		v := gaussian(x, 0.18, 0.03, 0.12) + // P wave (normal)
			gaussian(x, 0.38, 0.012, -0.18) + // Q dip (normal)
			gaussian(x, 0.42, 0.016, 1.0) + // R spike (normal)
			gaussian(x, 0.46, 0.014, -0.22) + // S dip (normal)
			gaussian(x, 0.56, 0.06, -0.10) + // ST depression
			gaussian(x, 0.76, 0.05, 0.12) // flattened, delayed T
		ts[pos+i] += v
	}
}

// writePVCBeat renders an anomalous premature-ventricular-contraction
// beat: no P wave, a wide early inverted-then-tall QRS, and an inverted T.
func writePVCBeat(ts []float64, pos, beatLen int) {
	L := float64(beatLen)
	for i := 0; i < beatLen && pos+i < len(ts); i++ {
		x := float64(i) / L
		v := gaussian(x, 0.30, 0.05, -0.55) + // deep wide dip
			gaussian(x, 0.42, 0.06, 1.25) + // broad tall R'
			gaussian(x, 0.60, 0.06, -0.45) // inverted T
		ts[pos+i] += v
	}
}

// tooCloseToTruth reports whether a glitch at [at, at+n) would fall within
// one beat of a planted anomaly, which would contaminate the ground truth.
func tooCloseToTruth(at, n int, truth []timeseries.Interval, beatLen int) bool {
	for _, tr := range truth {
		if at+n-1 >= tr.Start-beatLen && at <= tr.End+beatLen {
			return true
		}
	}
	return false
}
