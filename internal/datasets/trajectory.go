package datasets

import (
	"fmt"
	"math/rand"

	"grammarviz/internal/hilbert"
	"grammarviz/internal/timeseries"
)

// TrajectoryOptions controls the synthetic GPS commute generator.
type TrajectoryOptions struct {
	Days         int     // commute days (two trips per day)
	PointsPerLeg int     // GPS samples per route segment (waypoint pair)
	GPSNoise     float64 // positional noise std, in grid units
	HilbertOrder int     // order of the space-filling curve (the paper uses 8)
	Seed         int64
}

// TrajectoryData extends Dataset with the raw planar track, which the
// figure harness plots.
type TrajectoryData struct {
	Dataset
	Points []hilbert.Point
}

// The commute geography: home and work connected by two habitual
// staircase routes through the street grid (real streets wind, and the
// winding is what gives each route a recognizable Hilbert-value profile),
// plus a one-off detour through otherwise unvisited mid-grid streets.
var (
	trajHome = hilbert.Point{X: 20, Y: 20}
	trajWork = hilbert.Point{X: 230, Y: 205}

	// Route A: east-leaning staircase.
	trajRouteA = []hilbert.Point{
		trajHome, {X: 60, Y: 22}, {X: 65, Y: 60}, {X: 120, Y: 58}, {X: 125, Y: 95},
		{X: 180, Y: 100}, {X: 185, Y: 150}, {X: 228, Y: 155}, trajWork,
	}
	// Route B: north-leaning staircase.
	trajRouteB = []hilbert.Point{
		trajHome, {X: 22, Y: 70}, {X: 60, Y: 72}, {X: 62, Y: 130}, {X: 110, Y: 135},
		{X: 112, Y: 180}, {X: 170, Y: 185}, {X: 175, Y: 203}, trajWork,
	}
	// The detour: a diversion that zigzags across the grid's vertical
	// midline in the lower half of the map. Each crossing of x = 128 at
	// low y jumps the Hilbert visit order between distant quadrants, so
	// the detour's window profile is a square wave no habitual route
	// produces — the "small streets" signature of the paper's detour.
	trajDetour = []hilbert.Point{
		trajHome, {X: 110, Y: 60}, {X: 145, Y: 70}, {X: 112, Y: 85}, {X: 150, Y: 95},
		{X: 115, Y: 110}, {X: 170, Y: 120}, {X: 205, Y: 160}, trajWork,
	}
)

// Trajectory simulates the paper's commute case study (Section 5.1): days
// of home↔work trips over two alternating habitual routes, each ending
// with a loop through the work parking lot. Three anomalies are planted,
// mirroring Figures 7–9:
//
//   - a unique detour through otherwise unvisited streets (found by the
//     rule density curve in the paper);
//   - a "partial GPS fix" segment where the recorded positions scatter
//     around the true route (the paper's best RRA discord);
//   - one trip that skips the parking-lot loop (the paper's third
//     discord: familiar cells visited in an unseen order).
//
// The track is converted to a scalar series via the Hilbert curve, exactly
// as Figure 6 prescribes. Truth intervals are indices into that series,
// ordered: detour, fix loss, skipped loop.
func Trajectory(opt TrajectoryOptions) (*TrajectoryData, error) {
	c, err := hilbert.New(opt.HilbertOrder)
	if err != nil {
		return nil, fmt.Errorf("datasets: %w", err)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	var pts []hilbert.Point
	var detour, fixLoss, skipLoop timeseries.Interval

	detourDay := opt.Days / 3
	fixLossDay := 2 * opt.Days / 3
	skipLoopDay := opt.Days - 1
	if skipLoopDay == detourDay || skipLoopDay == fixLossDay {
		skipLoopDay-- // keep the three events on distinct days
	}

	for day := 0; day < opt.Days; day++ {
		route := trajRouteA
		if day%2 == 1 {
			route = trajRouteB
		}

		// Morning trip: home -> work.
		if day == detourDay {
			start := len(pts)
			pts = append(pts, legs(rng, opt, trajDetour...)...)
			// The whole diversion is spatially unique; exclude half a leg
			// at each end where the track blends into home/work arrivals.
			detour = timeseries.Interval{
				Start: start + opt.PointsPerLeg/2,
				End:   len(pts) - opt.PointsPerLeg/2 - 1,
			}
		} else {
			pts = append(pts, legs(rng, opt, route...)...)
		}

		// Parking-lot loop at work (skipped on the skip-loop day).
		if day == skipLoopDay {
			start := len(pts)
			// Drive straight past the lot entrance instead.
			pts = append(pts, leg(rng, opt.PointsPerLeg/2, opt.GPSNoise,
				trajWork, hilbert.Point{X: 245, Y: 215})...)
			pts = append(pts, leg(rng, opt.PointsPerLeg/2, opt.GPSNoise,
				hilbert.Point{X: 245, Y: 215}, trajWork)...)
			skipLoop = timeseries.Interval{Start: start, End: len(pts) - 1}
		} else {
			pts = append(pts, parkingLoop(rng, opt)...)
		}

		// Evening trip: work -> home, reversing the habitual route.
		if day == fixLossDay {
			start := len(pts)
			seg := legs(rng, opt, reversed(trajRouteA)...)
			// Partial GPS fix: scatter one stretch of recorded positions.
			lo, hi := len(seg)/4, len(seg)/2
			for i := lo; i < hi; i++ {
				seg[i].X += rng.NormFloat64() * 15
				seg[i].Y += rng.NormFloat64() * 15
			}
			pts = append(pts, seg...)
			fixLoss = timeseries.Interval{Start: start + lo, End: start + hi - 1}
		} else {
			pts = append(pts, legs(rng, opt, reversed(route)...)...)
		}
	}

	series, err := hilbert.Transform(c, pts)
	if err != nil {
		return nil, fmt.Errorf("datasets: %w", err)
	}
	return &TrajectoryData{
		Dataset: Dataset{
			Name:   "trajectory",
			Series: series,
			Truth:  []timeseries.Interval{detour, fixLoss, skipLoop},
		},
		Points: pts,
	}, nil
}

// leg samples n points along the straight segment from a to b with GPS
// noise.
func leg(rng *rand.Rand, n int, noise float64, a, b hilbert.Point) []hilbert.Point {
	out := make([]hilbert.Point, n)
	for i := range out {
		t := float64(i) / float64(n)
		out[i] = hilbert.Point{
			X: a.X + (b.X-a.X)*t + rng.NormFloat64()*noise,
			Y: a.Y + (b.Y-a.Y)*t + rng.NormFloat64()*noise,
		}
	}
	return out
}

// legs chains straight legs through the given waypoints.
func legs(rng *rand.Rand, opt TrajectoryOptions, waypoints ...hilbert.Point) []hilbert.Point {
	var out []hilbert.Point
	for i := 0; i+1 < len(waypoints); i++ {
		out = append(out, leg(rng, opt.PointsPerLeg, opt.GPSNoise, waypoints[i], waypoints[i+1])...)
	}
	return out
}

// reversed returns the waypoints in opposite order (the homeward route).
func reversed(route []hilbert.Point) []hilbert.Point {
	out := make([]hilbert.Point, len(route))
	for i, p := range route {
		out[len(route)-1-i] = p
	}
	return out
}

// parkingLoop renders the habitual small loop through the lot next to
// work.
func parkingLoop(rng *rand.Rand, opt TrajectoryOptions) []hilbert.Point {
	n := opt.PointsPerLeg / 8
	if n < 2 {
		n = 2
	}
	corners := []hilbert.Point{
		trajWork,
		{X: trajWork.X + 10, Y: trajWork.Y + 6},
		{X: trajWork.X + 10, Y: trajWork.Y + 14},
		{X: trajWork.X - 2, Y: trajWork.Y + 14},
		trajWork,
	}
	var out []hilbert.Point
	for i := 0; i+1 < len(corners); i++ {
		out = append(out, leg(rng, n, opt.GPSNoise/2, corners[i], corners[i+1])...)
	}
	return out
}
