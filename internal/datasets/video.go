package datasets

import (
	"math"
	"math/rand"

	"grammarviz/internal/timeseries"
)

// VideoOptions controls the synthetic gun-draw video-track generator.
type VideoOptions struct {
	N         int     // series length
	CycleLen  int     // samples per draw-aim-return cycle
	Noise     float64 // tracking noise std
	Anomalies int     // number of aberrant cycles
	Seed      int64
}

// Video synthesizes the hand-position track of the gun-draw surveillance
// dataset (Figures 1, 11, 12): the actor repeatedly draws, aims (a hold at
// high position), and re-holsters, producing a near-periodic trapezoidal
// wave. Planted anomalies are botched cycles — a hesitation on the way
// down and an overshoot, mimicking the "actor missed the holster" events
// annotated in the original recording.
func Video(opt VideoOptions) *Dataset {
	rng := rand.New(rand.NewSource(opt.Seed))
	ts := make([]float64, opt.N)
	nCycles := opt.N/opt.CycleLen + 1

	anomalous := map[int]bool{}
	if opt.Anomalies > 0 {
		step := nCycles / (opt.Anomalies + 1)
		if step < 2 {
			step = 2
		}
		for k := 1; k <= opt.Anomalies; k++ {
			if b := k * step; b < nCycles-1 {
				anomalous[b] = true
			}
		}
	}

	var truth []timeseries.Interval
	for c := 0; c < nCycles; c++ {
		start := c * opt.CycleLen
		for i := 0; i < opt.CycleLen && start+i < opt.N; i++ {
			x := float64(i) / float64(opt.CycleLen)
			var v float64
			switch {
			case x < 0.2: // draw: rise
				v = smoothstep(x / 0.2)
			case x < 0.6: // aim: hold high with slight tremor
				v = 1 + 0.02*math.Sin(40*x)
			case x < 0.8: // re-holster: fall
				v = 1 - smoothstep((x-0.6)/0.2)
			default: // rest
				v = 0
			}
			if anomalous[c] {
				// Aberrant cycle: hesitation mid-return and overshoot.
				if x >= 0.6 && x < 0.8 {
					v = 1 - smoothstep((x-0.6)/0.2)*0.5
				} else if x >= 0.8 {
					v = 0.5 - smoothstep((x-0.8)/0.2)*0.65
				}
			}
			ts[start+i] = v * 200 // pixel-scale amplitude like the original
		}
		if anomalous[c] {
			end := start + opt.CycleLen - 1
			if end >= opt.N {
				end = opt.N - 1
			}
			aStart := start + opt.CycleLen*6/10
			if aStart < opt.N {
				truth = append(truth, timeseries.Interval{Start: aStart, End: end})
			}
		}
	}
	addNoise(ts, opt.Noise, rng)
	return &Dataset{Name: "video", Series: ts, Truth: truth}
}

// smoothstep is the cubic ease curve 3x^2-2x^3 clamped to [0,1].
func smoothstep(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return x * x * (3 - 2*x)
}
