package datasets

import (
	"math"
	"math/rand"

	"grammarviz/internal/timeseries"
)

// TelemetryOptions controls the synthetic Marotta-valve telemetry
// generator.
type TelemetryOptions struct {
	N         int     // series length
	CycleLen  int     // samples per energize/de-energize cycle
	Noise     float64 // sensor noise std
	Anomalies int     // number of distorted actuation cycles
	Seed      int64
}

// Telemetry synthesizes Space-Shuttle Marotta valve current telemetry (the
// TEK records of Table 1): repeated energize cycles — a sharp inrush
// spike, a decaying plateau, and a de-energize drop — with planted
// distorted cycles in which the plateau sags and ripples, mirroring the
// poppet-obstruction anomalies annotated in the original TEK traces.
func Telemetry(opt TelemetryOptions) *Dataset {
	rng := rand.New(rand.NewSource(opt.Seed))
	ts := make([]float64, opt.N)
	nCycles := opt.N/opt.CycleLen + 1

	anomalous := map[int]bool{}
	if opt.Anomalies > 0 {
		step := nCycles / (opt.Anomalies + 1)
		if step < 2 {
			step = 2
		}
		for k := 1; k <= opt.Anomalies; k++ {
			if b := k * step; b < nCycles-1 {
				anomalous[b] = true
			}
		}
	}

	var truth []timeseries.Interval
	for c := 0; c < nCycles; c++ {
		start := c * opt.CycleLen
		for i := 0; i < opt.CycleLen && start+i < opt.N; i++ {
			x := float64(i) / float64(opt.CycleLen)
			var v float64
			switch {
			case x < 0.05: // inrush spike
				v = 1.6 * smoothstep(x/0.05)
			case x < 0.12: // settle to plateau
				v = 1.6 - 0.6*smoothstep((x-0.05)/0.07)
			case x < 0.62: // energized plateau with slight decay
				v = 1.0 - 0.12*(x-0.12)/0.5
				if anomalous[c] {
					// Distorted cycle: sagging, rippling plateau.
					v -= 0.35 * smoothstep((x-0.12)/0.1)
					v += 0.08 * math.Sin(50*x)
				}
			case x < 0.68: // de-energize drop
				v = 0.88 * (1 - smoothstep((x-0.62)/0.06))
				if anomalous[c] {
					v *= 0.6
				}
			default: // off
				v = 0
			}
			ts[start+i] = v
		}
		if anomalous[c] {
			aStart := start + opt.CycleLen*12/100
			aEnd := start + opt.CycleLen*68/100
			if aEnd >= opt.N {
				aEnd = opt.N - 1
			}
			if aStart < opt.N {
				truth = append(truth, timeseries.Interval{Start: aStart, End: aEnd})
			}
		}
	}
	addNoise(ts, opt.Noise, rng)
	return &Dataset{Name: "telemetry", Series: ts, Truth: truth}
}
