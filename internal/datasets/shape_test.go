package datasets

import (
	"math"
	"testing"

	"grammarviz/internal/timeseries"
)

// countPeaks counts local maxima above the threshold with at least minGap
// points between them — a crude beat/cycle counter.
func countPeaks(ts []float64, threshold float64, minGap int) int {
	count, last := 0, -minGap
	for i := 1; i+1 < len(ts); i++ {
		if ts[i] > threshold && ts[i] >= ts[i-1] && ts[i] >= ts[i+1] && i-last >= minGap {
			count++
			last = i
		}
	}
	return count
}

func TestECGShape(t *testing.T) {
	ds := ECG(ECGOptions{N: 6000, BeatLen: 120, Jitter: 0.01, Noise: 0, Anomalies: 0, Seed: 1})
	// ~50 beats: one R spike each.
	beats := countPeaks(ds.Series, 0.6, 60)
	if beats < 45 || beats > 55 {
		t.Errorf("R-spike count = %d, want ~50", beats)
	}
	// R amplitude ~1, baseline near 0.
	s, _ := timeseries.Describe(ds.Series)
	if s.Max < 0.9 || s.Max > 1.2 {
		t.Errorf("max = %v, want ~1.0", s.Max)
	}
	if math.Abs(s.Mean) > 0.25 {
		t.Errorf("mean = %v, want near 0", s.Mean)
	}
}

func TestECGSubtleVsPVC(t *testing.T) {
	base := ECG(ECGOptions{N: 3000, BeatLen: 120, Jitter: 0, Noise: 0, Anomalies: 0, Seed: 2})
	subtle := ECG(ECGOptions{N: 3000, BeatLen: 120, Jitter: 0, Noise: 0, Anomalies: 1, Subtle: true, Seed: 2})
	pvc := ECG(ECGOptions{N: 3000, BeatLen: 120, Jitter: 0, Noise: 0, Anomalies: 1, Subtle: false, Seed: 2})

	dev := func(a, b []float64, iv timeseries.Interval) float64 {
		var sum float64
		for i := iv.Start; i <= iv.End && i < len(a); i++ {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	subtleDev := dev(base.Series, subtle.Series, subtle.Truth[0])
	pvcDev := dev(base.Series, pvc.Series, pvc.Truth[0])
	if subtleDev <= 0 {
		t.Fatal("subtle anomaly identical to baseline")
	}
	// "Subtle" must be meaningfully smaller than a full PVC disruption.
	if subtleDev*2 > pvcDev {
		t.Errorf("subtle deviation %v not << PVC deviation %v", subtleDev, pvcDev)
	}
}

func TestECGWanderAndArtifacts(t *testing.T) {
	clean := ECG(ECGOptions{N: 3000, BeatLen: 120, Jitter: 0, Noise: 0, Anomalies: 0, Seed: 3})
	wander := ECG(ECGOptions{N: 3000, BeatLen: 120, Jitter: 0, Noise: 0, Wander: 0.5, Anomalies: 0, Seed: 3})
	sc, _ := timeseries.Describe(clean.Series)
	sw, _ := timeseries.Describe(wander.Series)
	if sw.Max-sw.Min <= sc.Max-sc.Min {
		t.Error("wander did not widen the value range")
	}
	withArt := ECG(ECGOptions{N: 3000, BeatLen: 120, Jitter: 0, Noise: 0, Anomalies: 1, Artifacts: 4, Seed: 3})
	noArt := ECG(ECGOptions{N: 3000, BeatLen: 120, Jitter: 0, Noise: 0, Anomalies: 1, Artifacts: 0, Seed: 3})
	diff := 0
	for i := range withArt.Series {
		if withArt.Series[i] != noArt.Series[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("artifacts did not modify the signal")
	}
	// Artifacts must stay clear of the planted anomaly (truth is clean).
	tr := withArt.Truth[0]
	for i := tr.Start; i <= tr.End; i++ {
		if withArt.Series[i] != noArt.Series[i] {
			t.Fatalf("artifact contaminated the truth interval at %d", i)
		}
	}
}

func TestVideoShape(t *testing.T) {
	ds := Video(VideoOptions{N: 6000, CycleLen: 300, Noise: 0, Anomalies: 0, Seed: 4})
	// 20 cycles: hand raised once per cycle (values near 200).
	raises := countPeaks(ds.Series, 150, 150)
	if raises < 18 || raises > 22 {
		t.Errorf("draw cycles = %d, want ~20", raises)
	}
	// Rest position is zero.
	if ds.Series[299] > 20 {
		t.Errorf("rest position = %v", ds.Series[299])
	}
}

func TestTelemetryShape(t *testing.T) {
	ds := Telemetry(TelemetryOptions{N: 5000, CycleLen: 500, Noise: 0, Anomalies: 0, Seed: 5})
	// Inrush spikes reach ~1.6 once per cycle.
	spikes := countPeaks(ds.Series, 1.3, 250)
	if spikes < 9 || spikes > 11 {
		t.Errorf("inrush spikes = %d, want ~10", spikes)
	}
	// Off period is flat zero.
	if v := ds.Series[450]; v != 0 {
		t.Errorf("off period = %v", v)
	}
}

func TestRespirationRegimeChange(t *testing.T) {
	ds := Respiration(RespirationOptions{N: 8000, BreathLen: 64, Noise: 0, Anomalies: 1, Seed: 6})
	tr := ds.Truth[0]
	// Inside the anomaly the oscillation is shallow: smaller amplitude.
	inside, _ := timeseries.Describe(ds.Series[tr.Start : tr.End+1])
	outside, _ := timeseries.Describe(ds.Series[:tr.Start-100])
	if inside.Std >= outside.Std*0.7 {
		t.Errorf("anomaly std %v not shallower than normal %v", inside.Std, outside.Std)
	}
}

func TestPowerDemandWeekendStructure(t *testing.T) {
	ds := PowerDemand(PowerOptions{Weeks: 2, PerDay: 96, Noise: 0, Seed: 7})
	// Weekday peak well above weekend level.
	mondayMax, _ := timeseries.Describe(ds.Series[0:96])
	saturdayMax, _ := timeseries.Describe(ds.Series[5*96 : 6*96])
	if mondayMax.Max < 2*saturdayMax.Max {
		t.Errorf("weekday max %v not >> weekend max %v", mondayMax.Max, saturdayMax.Max)
	}
	if len(ds.Truth) != 0 {
		t.Errorf("no holidays requested but truth = %v", ds.Truth)
	}
}
