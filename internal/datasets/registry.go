package datasets

import (
	"fmt"
	"sort"

	"grammarviz/internal/sax"
)

// Generate builds the named Table 1 dataset with its paper discretization
// parameters. Names match the paper rows (see Names). Large clinical
// records (ECG 300/318, 536k/586k points in the paper) are generated at a
// laptop-scale 40k points; the documented substitution preserves the
// structure, not the absolute size.
func Generate(name string) (*Dataset, error) {
	switch name {
	case "daily-commute":
		td, err := Trajectory(TrajectoryOptions{
			Days: 8, PointsPerLeg: 130, GPSNoise: 0.05, HilbertOrder: 8, Seed: 101,
		})
		if err != nil {
			return nil, err
		}
		td.Dataset.Name = name
		td.Dataset.Params = sax.Params{Window: 350, PAA: 15, Alphabet: 4}
		return &td.Dataset, nil

	case "dutch-power-demand":
		d := PowerDemand(PowerOptions{
			Weeks: 52, PerDay: 96, Noise: 0.015,
			// Spring state holidays, as in Figure 4: Good Friday (week 12,
			// Friday), Queen's Birthday (week 17, Wednesday), Ascension
			// Day (week 18, Thursday).
			Holidays: []Holiday{{Week: 12, Day: 4}, {Week: 17, Day: 2}, {Week: 18, Day: 3}},
			Seed:     102,
		})
		d.Name = name
		d.Params = sax.Params{Window: 750, PAA: 6, Alphabet: 3}
		return d, nil

	case "ecg0606":
		// qtdb 0606's annotated anomaly is a subtle ST-wave change
		// (Figure 2), not a full PVC.
		d := ECG(ECGOptions{N: 2300, BeatLen: 120, Jitter: 0.01, Noise: 0.012, Anomalies: 1, Subtle: true, Seed: 103})
		d.Name = name
		d.Params = sax.Params{Window: 120, PAA: 4, Alphabet: 4}
		return d, nil

	case "ecg308":
		d := ECG(ECGOptions{N: 5400, BeatLen: 300, Jitter: 0.01, Noise: 0.012, Anomalies: 1, Seed: 104})
		d.Name = name
		d.Params = sax.Params{Window: 300, PAA: 4, Alphabet: 4}
		return d, nil

	case "ecg15":
		d := ECG(ECGOptions{N: 15000, BeatLen: 300, Jitter: 0.01, Noise: 0.012, Anomalies: 1, Seed: 105})
		d.Name = name
		d.Params = sax.Params{Window: 300, PAA: 4, Alphabet: 4}
		return d, nil

	case "ecg108":
		d := ECG(ECGOptions{N: 21600, BeatLen: 300, Jitter: 0.01, Noise: 0.012, Anomalies: 1, Seed: 106})
		d.Name = name
		d.Params = sax.Params{Window: 300, PAA: 4, Alphabet: 4}
		return d, nil

	case "ecg300":
		d := ECG(ECGOptions{N: 40000, BeatLen: 300, Jitter: 0.01, Noise: 0.012, Anomalies: 3, Seed: 107})
		d.Name = name
		d.Params = sax.Params{Window: 300, PAA: 4, Alphabet: 4}
		return d, nil

	case "ecg318":
		d := ECG(ECGOptions{N: 40000, BeatLen: 300, Jitter: 0.01, Noise: 0.012, Anomalies: 2, Seed: 108})
		d.Name = name
		d.Params = sax.Params{Window: 300, PAA: 4, Alphabet: 4}
		return d, nil

	case "respiration-nprs43":
		d := Respiration(RespirationOptions{N: 4000, BreathLen: 64, Noise: 0.02, Anomalies: 1, Seed: 109})
		d.Name = name
		d.Params = sax.Params{Window: 128, PAA: 5, Alphabet: 4}
		return d, nil

	case "respiration-nprs44":
		d := Respiration(RespirationOptions{N: 24000, BreathLen: 64, Noise: 0.02, Anomalies: 2, Seed: 110})
		d.Name = name
		d.Params = sax.Params{Window: 128, PAA: 5, Alphabet: 4}
		return d, nil

	case "video-gun":
		d := Video(VideoOptions{N: 11250, CycleLen: 300, Noise: 1.2, Anomalies: 2, Seed: 111})
		d.Name = name
		d.Params = sax.Params{Window: 150, PAA: 5, Alphabet: 3}
		return d, nil

	case "tek14":
		d := Telemetry(TelemetryOptions{N: 5000, CycleLen: 500, Noise: 0.004, Anomalies: 1, Seed: 112})
		d.Name = name
		d.Params = sax.Params{Window: 128, PAA: 4, Alphabet: 4}
		return d, nil

	case "tek16":
		d := Telemetry(TelemetryOptions{N: 5000, CycleLen: 500, Noise: 0.005, Anomalies: 1, Seed: 113})
		d.Name = name
		d.Params = sax.Params{Window: 128, PAA: 4, Alphabet: 4}
		return d, nil

	case "tek17":
		d := Telemetry(TelemetryOptions{N: 5000, CycleLen: 500, Noise: 0.006, Anomalies: 1, Seed: 114})
		d.Name = name
		d.Params = sax.Params{Window: 128, PAA: 4, Alphabet: 4}
		return d, nil
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
}

// names lists every dataset Generate knows, in Table 1 order.
var names = []string{
	"daily-commute",
	"dutch-power-demand",
	"ecg0606",
	"ecg308",
	"ecg15",
	"ecg108",
	"ecg300",
	"ecg318",
	"respiration-nprs43",
	"respiration-nprs44",
	"video-gun",
	"tek14",
	"tek16",
	"tek17",
}

// Names returns the known dataset names in Table 1 order.
func Names() []string {
	out := make([]string, len(names))
	copy(out, names)
	return out
}

// SortedNames returns the known dataset names alphabetically.
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}
