// Package worker provides the panic-safe goroutine groups behind every
// parallel stage of the analysis pipeline (chunked SAX discretization,
// striped RRA rounds, per-window multiscale runs, nearest-non-self scans).
//
// The contract it enforces is the library's robustness invariant: a panic
// on a worker goroutine never crashes the process. It is recovered,
// converted into a *PanicError carrying the panic value and stack, and
// returned from Wait like any other error; the group's derived context is
// cancelled on the first failure so sibling workers wind down promptly at
// their next cancellation poll instead of running to completion.
package worker

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a worker panic converted into an error. Value is the
// recovered panic value; Stack is the panicking goroutine's stack at
// recovery time. Callers can detect contained panics with errors.As.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("worker panic: %v\n%s", e.Value, e.Stack)
}

// Group runs functions on goroutines with panic recovery and first-error
// cancellation, in the spirit of x/sync errgroup (stdlib-only, so we carry
// our own). Create one with WithContext; the zero value is not usable.
type Group struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
}

// WithContext returns a Group and a context derived from ctx that is
// cancelled when any worker returns a non-nil error, panics, or when Wait
// returns. Workers should poll the derived context so a failing sibling
// (or the caller's deadline) stops them promptly.
func WithContext(ctx context.Context) (*Group, context.Context) {
	cctx, cancel := context.WithCancel(ctx)
	return &Group{cancel: cancel}, cctx
}

// Go runs fn on a new goroutine. A panic in fn is recovered and recorded
// as a *PanicError instead of crashing the process; a non-nil return is
// recorded as the group error. Either failure cancels the group context.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.report(&PanicError{Value: r, Stack: debug.Stack()})
			}
		}()
		if err := fn(); err != nil {
			g.report(err)
		}
	}()
}

// report records err and cancels the group. The first error wins, except
// that a PanicError (a genuine bug) displaces a plain error (usually the
// expected context.Canceled ripple from the cancellation itself).
func (g *Group) report(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	} else if _, isPanic := err.(*PanicError); isPanic {
		if _, alreadyPanic := g.err.(*PanicError); !alreadyPanic {
			g.err = err
		}
	}
	g.mu.Unlock()
	g.cancel()
}

// Wait blocks until every worker started with Go has returned, cancels the
// group context, and returns the recorded error, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
