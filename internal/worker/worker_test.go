package worker

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupAllSucceed(t *testing.T) {
	g, _ := WithContext(context.Background())
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		g.Go(func() error { n.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 8 {
		t.Fatalf("ran %d workers, want 8", n.Load())
	}
}

func TestGroupPanicBecomesError(t *testing.T) {
	g, _ := WithContext(context.Background())
	g.Go(func() error { panic("kaboom-42") })
	err := g.Wait()
	if err == nil {
		t.Fatal("Wait returned nil after a worker panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError: %v", err, err)
	}
	if pe.Value != "kaboom-42" {
		t.Errorf("panic value = %v, want kaboom-42", pe.Value)
	}
	if !strings.Contains(err.Error(), "kaboom-42") {
		t.Errorf("error text does not name the panic value: %q", err.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
}

func TestGroupErrorCancelsSiblings(t *testing.T) {
	g, ctx := WithContext(context.Background())
	boom := fmt.Errorf("deliberate failure")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return fmt.Errorf("sibling was not cancelled")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
}

func TestGroupPanicDisplacesCancelError(t *testing.T) {
	g, ctx := WithContext(context.Background())
	release := make(chan struct{})
	// This worker reports context.Canceled only after the sibling panic has
	// cancelled the group.
	g.Go(func() error {
		<-ctx.Done()
		close(release)
		return ctx.Err()
	})
	g.Go(func() error { panic("the real bug") })
	<-release
	err := g.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic did not displace the cancel ripple: %v", err)
	}
}

func TestGroupParentCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	g, ctx := WithContext(parent)
	g.Go(func() error {
		<-ctx.Done()
		return ctx.Err()
	})
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}
