// Package timeseries provides the fundamental time series data type and
// the numeric primitives the rest of the library is built on: summary
// statistics, z-normalization, sliding-window extraction, and CSV I/O.
//
// A time series is represented as a plain []float64; the helpers in this
// package never retain references to caller slices unless documented.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Common errors returned by this package.
var (
	// ErrEmpty is returned when an operation requires a non-empty series.
	ErrEmpty = errors.New("timeseries: empty series")
	// ErrBadWindow is returned when a window length is non-positive or
	// exceeds the series length.
	ErrBadWindow = errors.New("timeseries: invalid window length")
	// ErrBadRange is returned when a subsequence range falls outside the
	// series bounds.
	ErrBadRange = errors.New("timeseries: range out of bounds")
	// ErrInvalidValue is returned when a series contains a NaN or infinite
	// value where only finite values are accepted. Errors wrapping it name
	// the first offending index; use Interpolate to clean the series.
	ErrInvalidValue = errors.New("timeseries: non-finite value")
)

// Stats holds the summary statistics of a series computed in one pass.
type Stats struct {
	N    int     // number of points
	Mean float64 // arithmetic mean
	Std  float64 // population standard deviation
	Min  float64 // minimum value
	Max  float64 // maximum value
}

// Describe computes summary statistics of ts in a single pass.
// It returns ErrEmpty for an empty series.
func Describe(ts []float64) (Stats, error) {
	if len(ts) == 0 {
		return Stats{}, ErrEmpty
	}
	s := Stats{N: len(ts), Min: ts[0], Max: ts[0]}
	var sum, sumSq float64
	for _, v := range ts {
		sum += v
		sumSq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	n := float64(s.N)
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance < 0 { // guard against catastrophic cancellation
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	return s, nil
}

// Mean returns the arithmetic mean of ts, or NaN for an empty series.
func Mean(ts []float64) float64 {
	if len(ts) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range ts {
		sum += v
	}
	return sum / float64(len(ts))
}

// Std returns the population standard deviation of ts, or NaN for an
// empty series.
func Std(ts []float64) float64 {
	s, err := Describe(ts)
	if err != nil {
		return math.NaN()
	}
	return s.Std
}

// Subsequence returns a copy of ts[start : start+length].
// It returns ErrBadRange when the range does not fit within ts.
func Subsequence(ts []float64, start, length int) ([]float64, error) {
	if start < 0 || length <= 0 || start+length > len(ts) {
		return nil, fmt.Errorf("%w: start=%d length=%d n=%d", ErrBadRange, start, length, len(ts))
	}
	out := make([]float64, length)
	copy(out, ts[start:start+length])
	return out, nil
}

// View returns ts[start : start+length] without copying. The caller must
// not mutate the result. It returns ErrBadRange when the range does not
// fit within ts.
func View(ts []float64, start, length int) ([]float64, error) {
	if start < 0 || length <= 0 || start+length > len(ts) {
		return nil, fmt.Errorf("%w: start=%d length=%d n=%d", ErrBadRange, start, length, len(ts))
	}
	return ts[start : start+length : start+length], nil
}

// Clone returns an independent copy of ts.
func Clone(ts []float64) []float64 {
	out := make([]float64, len(ts))
	copy(out, ts)
	return out
}

// HasNaN reports whether ts contains any NaN or infinite value.
func HasNaN(ts []float64) bool {
	return FirstInvalid(ts) >= 0
}

// FirstInvalid returns the index of the first NaN or infinite value in ts,
// or -1 when every value is finite.
func FirstInvalid(ts []float64) int {
	for i, v := range ts {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// ValidateFinite returns nil when every value of ts is finite, and an
// error wrapping ErrInvalidValue that names the first offending index and
// value otherwise. It is the single validation point the analysis entry
// points share.
func ValidateFinite(ts []float64) error {
	if i := FirstInvalid(ts); i >= 0 {
		return fmt.Errorf("%w: value %v at index %d", ErrInvalidValue, ts[i], i)
	}
	return nil
}

// Interpolate replaces NaN and infinite values with linear interpolation
// between the nearest finite neighbours. Leading non-finite values are
// filled with the first finite value, trailing ones with the last finite
// value, and a series with no finite value at all returns ErrEmpty (the
// returned slice is nil in that case). The input is modified in place and
// also returned for convenience.
func Interpolate(ts []float64) ([]float64, error) {
	first := -1
	for i, v := range ts {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			first = i
			break
		}
	}
	if first == -1 {
		return nil, fmt.Errorf("%w: no finite values", ErrEmpty)
	}
	for i := 0; i < first; i++ {
		ts[i] = ts[first]
	}
	last := first
	for i := first + 1; i < len(ts); i++ {
		v := ts[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if gap := i - last; gap > 1 {
			step := (ts[i] - ts[last]) / float64(gap)
			for j := 1; j < gap; j++ {
				ts[last+j] = ts[last] + step*float64(j)
			}
		}
		last = i
	}
	for i := last + 1; i < len(ts); i++ {
		ts[i] = ts[last]
	}
	return ts, nil
}
