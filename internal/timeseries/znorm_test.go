package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZNormalizeBasic(t *testing.T) {
	in := []float64{2, 4, 6, 8}
	out := ZNormalize(in, DefaultNormThreshold)
	if in[0] != 2 {
		t.Fatal("input must not be modified")
	}
	s, _ := Describe(out)
	if !almostEqual(s.Mean, 0, 1e-12) || !almostEqual(s.Std, 1, 1e-12) {
		t.Errorf("z-normed stats = %+v, want mean 0 std 1", s)
	}
}

func TestZNormalizeFlat(t *testing.T) {
	out := ZNormalize([]float64{5, 5, 5, 5}, DefaultNormThreshold)
	for _, v := range out {
		if v != 0 {
			t.Fatalf("flat series should center to zeros, got %v", out)
		}
	}
	// Near-constant: std below threshold is centered, not scaled.
	in := []float64{5, 5.001, 5, 4.999}
	out = ZNormalize(in, DefaultNormThreshold)
	s, _ := Describe(out)
	if !almostEqual(s.Mean, 0, 1e-12) {
		t.Errorf("near-flat mean = %v, want 0", s.Mean)
	}
	if s.Std > DefaultNormThreshold {
		t.Errorf("near-flat std = %v, should stay tiny (no scaling)", s.Std)
	}
}

func TestZNormalizeEmpty(t *testing.T) {
	if out := ZNormalize(nil, 0.01); len(out) != 0 {
		t.Errorf("ZNormalize(nil) = %v", out)
	}
}

func TestZNormalizeIntoMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	ZNormalizeInto(make([]float64, 2), make([]float64, 3), 0.01)
}

// Property: for any non-degenerate input, the z-normalized output has mean
// ~0 and std ~1.
func TestZNormalizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(n uint8) bool {
		size := int(n%64) + 2
		in := make([]float64, size)
		for i := range in {
			in[i] = rng.NormFloat64()*10 + 3
		}
		out := ZNormalize(in, DefaultNormThreshold)
		s, _ := Describe(out)
		if !almostEqual(s.Mean, 0, 1e-9) {
			return false
		}
		// Degenerate draws can still be near-flat; only check std when scaled.
		orig, _ := Describe(in)
		if orig.Std > DefaultNormThreshold && !almostEqual(s.Std, 1, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: z-normalization is idempotent up to floating point error.
func TestZNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := make([]float64, 128)
	for i := range in {
		in[i] = rng.NormFloat64() * 5
	}
	once := ZNormalize(in, DefaultNormThreshold)
	twice := ZNormalize(once, DefaultNormThreshold)
	for i := range once {
		if math.Abs(once[i]-twice[i]) > 1e-9 {
			t.Fatalf("not idempotent at %d: %v vs %v", i, once[i], twice[i])
		}
	}
}
