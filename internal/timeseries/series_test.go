package timeseries

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDescribe(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want Stats
	}{
		{"single", []float64{5}, Stats{N: 1, Mean: 5, Std: 0, Min: 5, Max: 5}},
		{"pair", []float64{1, 3}, Stats{N: 2, Mean: 2, Std: 1, Min: 1, Max: 3}},
		{"constant", []float64{2, 2, 2, 2}, Stats{N: 4, Mean: 2, Std: 0, Min: 2, Max: 2}},
		{"negatives", []float64{-1, 0, 1}, Stats{N: 3, Mean: 0, Std: math.Sqrt(2.0 / 3.0), Min: -1, Max: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Describe(tt.in)
			if err != nil {
				t.Fatalf("Describe: %v", err)
			}
			if got.N != tt.want.N || !almostEqual(got.Mean, tt.want.Mean, 1e-12) ||
				!almostEqual(got.Std, tt.want.Std, 1e-12) ||
				got.Min != tt.want.Min || got.Max != tt.want.Max {
				t.Errorf("Describe(%v) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestDescribeEmpty(t *testing.T) {
	if _, err := Describe(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Describe(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMeanStd(t *testing.T) {
	ts := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(ts); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Std(ts); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std(nil)) {
		t.Error("Mean/Std of empty should be NaN")
	}
}

func TestSubsequence(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4}
	sub, err := Subsequence(ts, 1, 3)
	if err != nil {
		t.Fatalf("Subsequence: %v", err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("Subsequence = %v, want %v", sub, want)
		}
	}
	sub[0] = 99
	if ts[1] == 99 {
		t.Error("Subsequence must copy, not alias")
	}
	for _, bad := range []struct{ start, length int }{{-1, 2}, {0, 0}, {3, 3}, {5, 1}} {
		if _, err := Subsequence(ts, bad.start, bad.length); !errors.Is(err, ErrBadRange) {
			t.Errorf("Subsequence(%d,%d) err = %v, want ErrBadRange", bad.start, bad.length, err)
		}
	}
}

func TestView(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4}
	v, err := View(ts, 2, 2)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if len(v) != 2 || v[0] != 2 || v[1] != 3 {
		t.Errorf("View = %v", v)
	}
	if _, err := View(ts, 4, 2); !errors.Is(err, ErrBadRange) {
		t.Errorf("View out of range err = %v", err)
	}
}

func TestClone(t *testing.T) {
	ts := []float64{1, 2}
	c := Clone(ts)
	c[0] = 9
	if ts[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestHasNaN(t *testing.T) {
	if HasNaN([]float64{1, 2, 3}) {
		t.Error("finite series flagged")
	}
	if !HasNaN([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if !HasNaN([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func TestInterpolate(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"interior gap", []float64{0, nan, nan, 3}, []float64{0, 1, 2, 3}},
		{"leading", []float64{nan, nan, 4, 5}, []float64{4, 4, 4, 5}},
		{"trailing", []float64{1, 2, nan}, []float64{1, 2, 2}},
		{"clean", []float64{1, 2, 3}, []float64{1, 2, 3}},
		{"inf treated as missing", []float64{0, math.Inf(1), 2}, []float64{0, 1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Interpolate(append([]float64(nil), tt.in...))
			if err != nil {
				t.Fatalf("Interpolate: %v", err)
			}
			for i := range tt.want {
				if !almostEqual(got[i], tt.want[i], 1e-12) {
					t.Fatalf("Interpolate(%v) = %v, want %v", tt.in, got, tt.want)
				}
			}
		})
	}
	if _, err := Interpolate([]float64{nan, nan}); err == nil {
		t.Error("all-NaN series should error")
	}
}

func TestInterpolateEdges(t *testing.T) {
	nan := math.NaN()
	t.Run("all NaN", func(t *testing.T) {
		out, err := Interpolate([]float64{nan, nan, nan})
		if !errors.Is(err, ErrEmpty) {
			t.Fatalf("err = %v, want ErrEmpty", err)
		}
		if out != nil {
			t.Fatalf("out = %v, want nil on error", out)
		}
	})
	t.Run("all Inf", func(t *testing.T) {
		if _, err := Interpolate([]float64{math.Inf(1), math.Inf(-1)}); !errors.Is(err, ErrEmpty) {
			t.Fatalf("err = %v, want ErrEmpty", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Interpolate(nil); !errors.Is(err, ErrEmpty) {
			t.Fatalf("err = %v, want ErrEmpty", err)
		}
	})
	t.Run("single finite island", func(t *testing.T) {
		got, err := Interpolate([]float64{nan, nan, 7, nan, nan})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != 7 {
				t.Fatalf("got[%d] = %v, want 7 (fill from lone finite point)", i, v)
			}
		}
	})
}

func TestValidateFinite(t *testing.T) {
	if err := ValidateFinite([]float64{1, 2, 3}); err != nil {
		t.Fatalf("finite series rejected: %v", err)
	}
	if err := ValidateFinite(nil); err != nil {
		t.Fatalf("empty series rejected: %v", err)
	}
	err := ValidateFinite([]float64{1, 2, math.NaN(), math.Inf(1)})
	if !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("err = %v, want ErrInvalidValue", err)
	}
	if !strings.Contains(err.Error(), "index 2") {
		t.Fatalf("error %q does not name the first bad index 2", err)
	}
	if i := FirstInvalid([]float64{math.Inf(-1)}); i != 0 {
		t.Fatalf("FirstInvalid = %d, want 0", i)
	}
	if i := FirstInvalid([]float64{0, 1}); i != -1 {
		t.Fatalf("FirstInvalid = %d, want -1", i)
	}
}
