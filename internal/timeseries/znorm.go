package timeseries

// DefaultNormThreshold is the standard-deviation threshold below which a
// subsequence is considered flat and is centered rather than scaled during
// z-normalization. This mirrors the behaviour of the SAX reference
// implementation, which avoids amplifying noise in near-constant segments.
const DefaultNormThreshold = 0.01

// ZNormalize returns a z-normalized copy of ts: the result has mean zero
// and, when the standard deviation of ts exceeds threshold, unit standard
// deviation. Near-constant subsequences (std <= threshold) are only
// mean-centered, which leaves them flat instead of blowing up noise.
//
// A threshold <= 0 selects DefaultNormThreshold behaviour with threshold 0,
// i.e. scaling is skipped only for exactly constant input.
func ZNormalize(ts []float64, threshold float64) []float64 {
	out := make([]float64, len(ts))
	ZNormalizeInto(out, ts, threshold)
	return out
}

// ZNormalizeInto z-normalizes src into dst, which must have the same
// length; it panics otherwise. It is the allocation-free variant of
// ZNormalize for hot loops.
func ZNormalizeInto(dst, src []float64, threshold float64) {
	if len(dst) != len(src) {
		panic("timeseries: ZNormalizeInto length mismatch")
	}
	if len(src) == 0 {
		return
	}
	s, _ := Describe(src)
	if s.Std <= threshold {
		for i, v := range src {
			dst[i] = v - s.Mean
		}
		return
	}
	inv := 1 / s.Std
	for i, v := range src {
		dst[i] = (v - s.Mean) * inv
	}
}
