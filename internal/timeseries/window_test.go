package timeseries

import (
	"errors"
	"testing"
)

func TestWindowCount(t *testing.T) {
	tests := []struct {
		n, window, want int
	}{
		{10, 3, 8},
		{10, 10, 1},
		{10, 11, 0},
		{10, 0, 0},
		{0, 1, 0},
		{5, -1, 0},
	}
	for _, tt := range tests {
		if got := WindowCount(tt.n, tt.window); got != tt.want {
			t.Errorf("WindowCount(%d,%d) = %d, want %d", tt.n, tt.window, got, tt.want)
		}
	}
}

func TestWindows(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4}
	var starts []int
	err := Windows(ts, 2, func(start int, sub []float64) {
		starts = append(starts, start)
		if len(sub) != 2 || sub[0] != float64(start) {
			t.Errorf("window at %d = %v", start, sub)
		}
	})
	if err != nil {
		t.Fatalf("Windows: %v", err)
	}
	if len(starts) != 4 {
		t.Errorf("got %d windows, want 4", len(starts))
	}
	if err := Windows(ts, 6, func(int, []float64) {}); !errors.Is(err, ErrBadWindow) {
		t.Errorf("oversize window err = %v, want ErrBadWindow", err)
	}
	if err := Windows(ts, 0, func(int, []float64) {}); !errors.Is(err, ErrBadWindow) {
		t.Errorf("zero window err = %v, want ErrBadWindow", err)
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{Start: 10, End: 19}
	if iv.Len() != 10 {
		t.Errorf("Len = %d, want 10", iv.Len())
	}
	if !iv.Valid(20) || iv.Valid(19) {
		t.Error("Valid bounds check wrong")
	}
	if (Interval{Start: -1, End: 3}).Valid(10) {
		t.Error("negative start should be invalid")
	}
	if (Interval{Start: 5, End: 4}).Valid(10) {
		t.Error("inverted interval should be invalid")
	}
}

func TestIntervalOverlap(t *testing.T) {
	tests := []struct {
		a, b     Interval
		overlaps bool
		olen     int
		frac     float64
	}{
		{Interval{0, 9}, Interval{5, 14}, true, 5, 0.5},
		{Interval{0, 9}, Interval{10, 19}, false, 0, 0},
		{Interval{0, 9}, Interval{9, 9}, true, 1, 1},
		{Interval{3, 7}, Interval{0, 10}, true, 5, 1},
		{Interval{0, 99}, Interval{50, 149}, true, 50, 0.5},
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b); got != tt.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v", tt.a, tt.b, got)
		}
		if got := tt.b.Overlaps(tt.a); got != tt.overlaps {
			t.Errorf("Overlaps not symmetric for %v,%v", tt.a, tt.b)
		}
		if got := tt.a.OverlapLen(tt.b); got != tt.olen {
			t.Errorf("%v.OverlapLen(%v) = %d, want %d", tt.a, tt.b, got, tt.olen)
		}
		if got := tt.a.OverlapFrac(tt.b); !almostEqual(got, tt.frac, 1e-12) {
			t.Errorf("%v.OverlapFrac(%v) = %v, want %v", tt.a, tt.b, got, tt.frac)
		}
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{2, 5}).String(); got != "[2,5]" {
		t.Errorf("String = %q", got)
	}
}
