package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMovingMeanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := make([]float64, 200)
	for i := range ts {
		ts[i] = rng.NormFloat64()
	}
	for _, window := range []int{1, 3, 7, 21, 199, 500} {
		got, err := MovingMean(ts, window)
		if err != nil {
			t.Fatalf("MovingMean(%d): %v", window, err)
		}
		w := window
		if w%2 == 0 {
			w++
		}
		half := w / 2
		for i := range ts {
			lo, hi := i-half, i+half
			if lo < 0 {
				lo = 0
			}
			if hi >= len(ts) {
				hi = len(ts) - 1
			}
			var sum float64
			for j := lo; j <= hi; j++ {
				sum += ts[j]
			}
			want := sum / float64(hi-lo+1)
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("window %d at %d: %v vs %v", window, i, got[i], want)
			}
		}
	}
}

func TestMovingMeanErrors(t *testing.T) {
	if _, err := MovingMean([]float64{1}, 0); !errors.Is(err, ErrBadWindow) {
		t.Errorf("err = %v", err)
	}
	out, err := MovingMean(nil, 5)
	if err != nil || len(out) != 0 {
		t.Errorf("empty series: %v %v", out, err)
	}
}

func TestDetrendRemovesWander(t *testing.T) {
	// Fast oscillation + slow wander: detrending with a window between
	// the two periods must keep the oscillation and kill the wander.
	n := 2000
	ts := make([]float64, n)
	for i := range ts {
		x := float64(i)
		ts[i] = math.Sin(2*math.Pi*x/20) + 5*math.Sin(2*math.Pi*x/1000)
	}
	out, err := Detrend(ts, 101)
	if err != nil {
		t.Fatalf("Detrend: %v", err)
	}
	// Compare against the pure oscillation away from the edges.
	var worst float64
	for i := 200; i < n-200; i++ {
		want := math.Sin(2 * math.Pi * float64(i) / 20)
		if d := math.Abs(out[i] - want); d > worst {
			worst = d
		}
	}
	if worst > 0.25 {
		t.Errorf("detrended signal deviates %v from the oscillation", worst)
	}
	// The wander's amplitude (5) must be gone.
	s, _ := Describe(out[200 : n-200])
	if s.Max > 1.5 || s.Min < -1.5 {
		t.Errorf("wander survived: range [%v, %v]", s.Min, s.Max)
	}
}

func TestDetrendConstant(t *testing.T) {
	ts := []float64{3, 3, 3, 3, 3}
	out, err := Detrend(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("detrended constant = %v", out)
		}
	}
}
