package timeseries

import "fmt"

// MovingMean returns the centered moving average of ts with the given
// window (clamped at the series edges), computed with a running sum in
// O(n). Window must be positive; even windows are rounded up to odd so
// the filter stays centered.
func MovingMean(ts []float64, window int) ([]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: window=%d", ErrBadWindow, window)
	}
	if window%2 == 0 {
		window++
	}
	n := len(ts)
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	half := window / 2
	// Prefix sums for O(1) range means with edge clamping.
	prefix := make([]float64, n+1)
	for i, v := range ts {
		prefix[i+1] = prefix[i] + v
	}
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out, nil
}

// Detrend subtracts the centered moving average with the given window
// from ts, returning a new slice. It removes slow baseline wander (e.g.
// respiration drift in an ECG) while preserving structure shorter than
// the window — a useful preprocessing step before SAX discretization when
// the drift amplitude rivals the signal.
func Detrend(ts []float64, window int) ([]float64, error) {
	trend, err := MovingMean(ts, window)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ts))
	for i := range ts {
		out[i] = ts[i] - trend[i]
	}
	return out, nil
}
