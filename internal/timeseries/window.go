package timeseries

import "fmt"

// WindowCount returns the number of sliding windows of length window over
// a series of length n, or 0 when the window does not fit.
func WindowCount(n, window int) int {
	if window <= 0 || window > n {
		return 0
	}
	return n - window + 1
}

// Windows calls fn for every sliding window of ts in left-to-right order.
// The slice passed to fn aliases ts and must not be retained or modified.
// It returns ErrBadWindow when the window does not fit.
func Windows(ts []float64, window int, fn func(start int, sub []float64)) error {
	if window <= 0 || window > len(ts) {
		return fmt.Errorf("%w: window=%d n=%d", ErrBadWindow, window, len(ts))
	}
	for start := 0; start+window <= len(ts); start++ {
		fn(start, ts[start:start+window])
	}
	return nil
}

// Interval is a half-open-free, inclusive [Start, End] index range into a
// time series, used throughout the library to describe the subsequence a
// grammar rule, discord, or anomaly corresponds to.
type Interval struct {
	Start int // index of the first covered point
	End   int // index of the last covered point (inclusive)
}

// Len returns the number of points the interval covers.
func (iv Interval) Len() int { return iv.End - iv.Start + 1 }

// Valid reports whether the interval is well-formed and fits a series of
// length n.
func (iv Interval) Valid(n int) bool {
	return iv.Start >= 0 && iv.End >= iv.Start && iv.End < n
}

// Overlaps reports whether iv and other share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// OverlapLen returns the number of points shared by iv and other.
func (iv Interval) OverlapLen(other Interval) int {
	lo := iv.Start
	if other.Start > lo {
		lo = other.Start
	}
	hi := iv.End
	if other.End < hi {
		hi = other.End
	}
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// OverlapFrac returns the fraction of the shorter interval covered by the
// overlap of iv and other, in [0, 1]. It is the recall measure used by the
// paper's Table 1 ("discords length and overlap").
func (iv Interval) OverlapFrac(other Interval) float64 {
	ol := iv.OverlapLen(other)
	if ol == 0 {
		return 0
	}
	shorter := iv.Len()
	if other.Len() < shorter {
		shorter = other.Len()
	}
	return float64(ol) / float64(shorter)
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d]", iv.Start, iv.End)
}
