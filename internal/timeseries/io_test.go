package timeseries

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []float64
	}{
		{"plain", "1\n2\n3\n", []float64{1, 2, 3}},
		{"comments and blanks", "# header\n1.5\n\n2.5\n", []float64{1.5, 2.5}},
		{"first column of csv", "1,9,9\n2,8,8\n", []float64{1, 2}},
		{"whitespace separated", "3 4\n5\t6\n", []float64{3, 5}},
		{"scientific", "1e3\n-2.5e-2\n", []float64{1000, -0.025}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ReadCSV(strings.NewReader(tt.in))
			if err != nil {
				t.Fatalf("ReadCSV: %v", err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1\nbogus\n")); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ReadCSV(strings.NewReader("# only comments\n")); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty file err = %v, want ErrEmpty", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := []float64{1.25, -3, 0.0001, 1e9}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("round trip = %v, want %v", got, in)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ts.csv")
	in := []float64{5, 6, 7}
	if err := WriteCSVFile(path, in); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	got, err := ReadCSVFile(path)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Errorf("file round trip = %v", got)
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("expected error for missing file")
	}
}
