package timeseries

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadCSV reads a single-column (or whitespace/comma separated, first
// column used) numeric series from r. Blank lines and lines starting with
// '#' are skipped. A value that fails to parse yields an error naming the
// line number.
func ReadCSV(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		field := line
		if i := strings.IndexAny(line, ", \t"); i >= 0 {
			field = line[:i]
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: line %d: parse %q: %w", lineNo, field, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("timeseries: read: %w", err)
	}
	if len(out) == 0 {
		return nil, ErrEmpty
	}
	return out, nil
}

// ReadCSVFile reads a numeric series from the file at path using ReadCSV.
func ReadCSVFile(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("timeseries: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV writes ts to w, one value per line with full float precision.
func WriteCSV(w io.Writer, ts []float64) error {
	bw := bufio.NewWriter(w)
	for _, v := range ts {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return fmt.Errorf("timeseries: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("timeseries: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("timeseries: write: %w", err)
	}
	return nil
}

// WriteCSVFile writes ts to the file at path, creating or truncating it.
func WriteCSVFile(path string, ts []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("timeseries: %w", err)
	}
	if err := WriteCSV(f, ts); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
