// Package metrics is the stdlib-only instrumentation core behind gvad's
// /metrics endpoint: counters, gauges, and histograms registered in a
// Registry that renders the Prometheus text exposition format (0.0.4).
// It exists so the daemon can be scraped by any Prometheus-compatible
// collector without importing third-party code — the same constraint the
// rest of the repository obeys.
//
// All metric types are safe for concurrent use. Registration is not
// expected to race with scraping setup: create the metrics once at
// startup, then share them.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. Create one with
// Registry.NewCounter (or via CounterVec.With); the zero value works but
// is not rendered by any registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, queue
// depth). Create one with Registry.NewGauge.
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative less-or-equal buckets,
// Prometheus style, and tracks their sum. Create one with
// Registry.NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds
	counts []uint64  // len(bounds)+1; the extra slot is the +Inf bucket
	sum    float64
	total  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the first le-bucket the observation belongs to;
	// beyond the last bound it lands in the implicit +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// DefBuckets is a latency-oriented default bucket layout in seconds.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// CounterVec is a family of counters partitioned by label values (e.g.
// requests by mode and outcome). Create one with Registry.NewCounterVec.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*vecChild
}

type vecChild struct {
	values []string
	c      Counter
}

// With returns (creating on first use) the counter for the given label
// values, which must match the label names in number and order.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &vecChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.c
}

// family is one registered metric and how to render it.
type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	vec     *CounterVec
}

// Registry holds registered metrics and renders them in a stable order
// (registration order; vec children sorted by label values).
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("metrics: duplicate metric name " + f.name)
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: append([]string(nil), labels...), children: make(map[string]*vecChild)}
	r.register(&family{name: name, help: help, typ: "counter", vec: v})
	return v
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// NewHistogram registers and returns a histogram with the given upper
// bounds (strictly increasing; nil selects DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.gauge.Value())
		case f.vec != nil:
			writeVec(bw, f.name, f.vec)
		case f.hist != nil:
			writeHistogram(bw, f.name, f.hist)
		}
	}
	return bw.Flush()
}

func writeVec(w io.Writer, name string, v *CounterVec) {
	v.mu.Lock()
	children := make([]*vecChild, 0, len(v.children))
	for _, ch := range v.children {
		children = append(children, ch)
	}
	v.mu.Unlock()
	sort.Slice(children, func(a, b int) bool {
		return strings.Join(children[a].values, "\x00") < strings.Join(children[b].values, "\x00")
	})
	for _, ch := range children {
		pairs := make([]string, len(v.labels))
		for i, l := range v.labels {
			// %q escapes backslash, quote and newline — the three characters
			// the exposition format requires escaped in label values.
			pairs[i] = fmt.Sprintf("%s=%q", l, ch.values[i])
		}
		fmt.Fprintf(w, "%s{%s} %d\n", name, strings.Join(pairs, ","), ch.c.Value())
	}
}

func writeHistogram(w io.Writer, name string, h *Histogram) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	bounds := h.bounds
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
