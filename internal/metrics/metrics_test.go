package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionFormat renders one metric of each type and checks the
// exact text a Prometheus scraper would parse.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs processed.")
	g := r.NewGauge("inflight", "In-flight requests.")
	v := r.NewCounterVec("requests_total", "Requests by mode.", "mode", "outcome")
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1})

	c.Add(3)
	g.Set(2)
	v.With("rra", "ok").Inc()
	v.With("rra", "ok").Inc()
	v.With("density", "error").Inc()
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# HELP inflight In-flight requests.",
		"# TYPE inflight gauge",
		"inflight 2",
		"# HELP requests_total Requests by mode.",
		"# TYPE requests_total counter",
		`requests_total{mode="density",outcome="error"} 1`,
		`requests_total{mode="rra",outcome="ok"} 2`,
		"# HELP latency_seconds Latency.",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.55",
		"latency_seconds_count 3",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramBoundaries checks the le (inclusive) bucket semantics: an
// observation equal to a bound lands in that bound's bucket.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{`h_bucket{le="1"} 1`, `h_bucket{le="2"} 2`, `h_bucket{le="+Inf"} 3`} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("output missing %q:\n%s", line, b.String())
		}
	}
}

// TestConcurrentUse hammers every metric type from many goroutines; run
// under -race this is the concurrency-safety check.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	v := r.NewCounterVec("v", "", "l")
	h := r.NewHistogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				v.With("x").Inc()
				v.With("y").Inc()
				h.Observe(float64(j) / 100)
			}
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if v.With("x").Value() != 8000 {
		t.Errorf("vec child x = %d, want 8000", v.With("x").Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// TestHandler checks the scrape endpoint's content type and body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("up", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

// TestDuplicateNamePanics documents that re-registering a name is a
// programmer error.
func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "")
}
