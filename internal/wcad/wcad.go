// Package wcad implements Window Comparison Anomaly Detection in the
// spirit of Keogh, Lonardi & Ratanamahatana's parameter-free approach
// (KDD 2004), the compression-based baseline the paper's related work
// describes as "computationally expensive" because it runs a compressor
// many times (Section 6). The series is split into equal chunks; each
// chunk is SAX-discretized and scored by its Compression-based
// Dissimilarity Measure against the rest of the series:
//
//	CDM(x, y) = C(xy) / (C(x) + C(y))
//
// where C is the size of the Sequitur grammar induced from the symbol
// string — the same compressor the main pipeline uses, which keeps the
// comparison honest. An anomalous chunk shares no structure with the
// rest, so concatenating it compresses poorly and its CDM is high.
package wcad

import (
	"fmt"
	"sort"
	"strings"

	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/timeseries"
)

// Score is one chunk's anomaly score.
type Score struct {
	Interval timeseries.Interval
	CDM      float64
}

// Detect splits ts into len(ts)/window chunks, discretizes each chunk to
// letters (PAA per segment of size window/paa), and ranks chunks by CDM
// against the concatenation of all other chunks, highest (most anomalous)
// first. Both window and the chunking are the same "anomaly size must be
// known" requirement the paper criticizes WCAD for.
func Detect(ts []float64, p sax.Params) ([]Score, error) {
	if err := p.Validate(len(ts)); err != nil {
		return nil, err
	}
	nChunks := len(ts) / p.Window
	if nChunks < 3 {
		return nil, fmt.Errorf("wcad: need >= 3 chunks, got %d (series %d, window %d)", nChunks, len(ts), p.Window)
	}
	enc, err := sax.NewEncoder(p)
	if err != nil {
		return nil, err
	}
	chunks := make([]string, nChunks)
	for i := 0; i < nChunks; i++ {
		w, err := enc.Encode(ts[i*p.Window : (i+1)*p.Window])
		if err != nil {
			return nil, fmt.Errorf("wcad: chunk %d: %w", i, err)
		}
		chunks[i] = w
	}

	scores := make([]Score, nChunks)
	for i := 0; i < nChunks; i++ {
		var rest strings.Builder
		for j, c := range chunks {
			if j != i {
				rest.WriteString(c)
			}
		}
		x := chunks[i]
		y := rest.String()
		cdm := float64(compressedSize(x+y)) / float64(compressedSize(x)+compressedSize(y))
		scores[i] = Score{
			Interval: timeseries.Interval{Start: i * p.Window, End: (i+1)*p.Window - 1},
			CDM:      cdm,
		}
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].CDM > scores[b].CDM })
	return scores, nil
}

// compressedSize is C(s): the total number of right-hand-side symbols of
// the Sequitur grammar induced from s's letters.
func compressedSize(s string) int {
	tokens := make([]string, len(s))
	for i := 0; i < len(s); i++ {
		tokens[i] = s[i : i+1]
	}
	g := sequitur.Induce(tokens)
	size := 0
	for _, r := range g.Rules {
		size += len(r.Body)
	}
	return size
}
