package wcad

import (
	"math"
	"math/rand"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/timeseries"
)

func plantedSeries(n int, period float64, at, length int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	for i := at; i < at+length && i < n; i++ {
		ts[i] = math.Sin(4*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	return ts
}

func TestDetectFindsPlant(t *testing.T) {
	// Anomaly aligned with a chunk boundary (WCAD's known requirement).
	at, length := 600, 60
	ts := plantedSeries(1800, 60, at, length, 1)
	scores, err := Detect(ts, sax.Params{Window: 60, PAA: 12, Alphabet: 5})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if len(scores) != 30 {
		t.Fatalf("got %d chunks", len(scores))
	}
	planted := timeseries.Interval{Start: at, End: at + length - 1}
	if !scores[0].Interval.Overlaps(planted) {
		t.Errorf("top WCAD chunk %v (CDM %.3f) misses planted %v; next: %v",
			scores[0].Interval, scores[0].CDM, planted, scores[1].Interval)
	}
	// Scores are ranked descending and within a sane CDM range.
	for i := 1; i < len(scores); i++ {
		if scores[i].CDM > scores[i-1].CDM {
			t.Fatal("scores not ranked")
		}
	}
	for _, s := range scores {
		if s.CDM <= 0 || s.CDM > 2 {
			t.Errorf("CDM %v out of range for %v", s.CDM, s.Interval)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	ts := plantedSeries(200, 40, 100, 40, 2)
	if _, err := Detect(ts, sax.Params{Window: 100, PAA: 4, Alphabet: 4}); err == nil {
		t.Error("2 chunks should error")
	}
	if _, err := Detect(ts, sax.Params{Window: 1000, PAA: 4, Alphabet: 4}); err == nil {
		t.Error("oversize window should error")
	}
}

func TestCompressedSize(t *testing.T) {
	// A repetitive string compresses to fewer symbols than a random one
	// of the same length.
	rep := ""
	for i := 0; i < 32; i++ {
		rep += "abcd"
	}
	rng := rand.New(rand.NewSource(3))
	rnd := make([]byte, len(rep))
	for i := range rnd {
		rnd[i] = byte('a' + rng.Intn(20))
	}
	if cr, cn := compressedSize(rep), compressedSize(string(rnd)); cr >= cn {
		t.Errorf("repetitive size %d >= random size %d", cr, cn)
	}
	if compressedSize("a") != 1 {
		t.Errorf("size of single letter = %d", compressedSize("a"))
	}
}
