package density

import (
	"math"
	"math/rand"
	"testing"
)

func TestSurpriseBasics(t *testing.T) {
	// Uniform coverage: nothing is surprising.
	flat := []int{5, 5, 5, 5, 5}
	for i, s := range Surprise(flat) {
		if s != 0 {
			t.Errorf("flat curve surprise[%d] = %v", i, s)
		}
	}
	// One zero-coverage point among high coverage is very surprising.
	curve := make([]int, 100)
	for i := range curve {
		curve[i] = 50
	}
	curve[40] = 0
	s := Surprise(curve)
	if s[40] < 10 {
		t.Errorf("zero point surprise = %v, want large", s[40])
	}
	if s[0] != 0 {
		t.Errorf("normal point surprise = %v, want 0", s[0])
	}
	// Monotone: lower density => higher surprise.
	curve[41] = 25
	s = Surprise(curve)
	if s[40] <= s[41] {
		t.Errorf("surprise not monotone: s(0)=%v <= s(25)=%v", s[40], s[41])
	}
}

func TestSurpriseDegenerate(t *testing.T) {
	if got := Surprise(nil); len(got) != 0 {
		t.Error("nil curve")
	}
	zeros := Surprise([]int{0, 0, 0})
	for _, v := range zeros {
		if v != 0 {
			t.Error("all-zero curve has rate 0; nothing can be scored")
		}
	}
}

func TestPoissonLogCDF(t *testing.T) {
	// P(X <= 0) for lambda=10 is e^-10 => log10 ~ -4.34.
	got := poissonLogCDF10(0, 10)
	want := -10 / math.Ln10
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("logCDF(0;10) = %v, want %v", got, want)
	}
	// CDF at large k approaches 1 => log10 approaches 0.
	if got := poissonLogCDF10(100, 10); math.Abs(got) > 1e-6 {
		t.Errorf("logCDF(100;10) = %v, want ~0", got)
	}
	// Cross-check a mid value against a direct summation for lambda=4.
	var direct float64
	fact := 1.0
	for j := 0; j <= 3; j++ {
		if j > 0 {
			fact *= float64(j)
		}
		direct += math.Exp(-4) * math.Pow(4, float64(j)) / fact
	}
	if got := poissonLogCDF10(3, 4); math.Abs(got-math.Log10(direct)) > 1e-9 {
		t.Errorf("logCDF(3;4) = %v, want %v", got, math.Log10(direct))
	}
}

func TestSurpriseAnomalies(t *testing.T) {
	surprise := make([]float64, 50)
	for i := 20; i < 25; i++ {
		surprise[i] = 5
	}
	surprise[30] = 8
	got := SurpriseAnomalies(surprise, 3, 0, 0)
	if len(got) != 2 {
		t.Fatalf("anomalies = %+v", got)
	}
	// Ranked by peak: the single spike first.
	if got[0].Interval != iv(30, 30) || got[0].Peak != 8 {
		t.Errorf("first anomaly = %+v", got[0])
	}
	if got[1].Interval != iv(20, 24) || got[1].Peak != 5 {
		t.Errorf("second anomaly = %+v", got[1])
	}
	// minLen filter.
	if got := SurpriseAnomalies(surprise, 3, 2, 0); len(got) != 1 {
		t.Errorf("minLen filter = %+v", got)
	}
	// Margin excludes edge content.
	surprise2 := make([]float64, 50)
	surprise2[0] = 9
	surprise2[49] = 9
	if got := SurpriseAnomalies(surprise2, 3, 0, 5); len(got) != 0 {
		t.Errorf("margin should exclude edges: %+v", got)
	}
	if got := SurpriseAnomalies(surprise2, 3, 0, 30); got != nil {
		t.Errorf("oversize margin = %+v", got)
	}
	// Run reaching the inner boundary is flushed.
	surprise3 := make([]float64, 20)
	for i := 15; i < 20; i++ {
		surprise3[i] = 4
	}
	if got := SurpriseAnomalies(surprise3, 3, 0, 0); len(got) != 1 || got[0].Interval != iv(15, 19) {
		t.Errorf("tail run = %+v", got)
	}
}

// Property: on a random Poisson-like curve with one planted hole, the hole
// has the top surprise.
func TestSurpriseFindsHole(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	curve := make([]int, 500)
	for i := range curve {
		// Roughly Poisson(30) by summing Bernoulli draws.
		c := 0
		for j := 0; j < 60; j++ {
			if rng.Float64() < 0.5 {
				c++
			}
		}
		curve[i] = c
	}
	for i := 250; i < 260; i++ {
		curve[i] = 2
	}
	s := Surprise(curve)
	anoms := SurpriseAnomalies(s, 3, 0, 0)
	if len(anoms) == 0 {
		t.Fatal("no anomalies")
	}
	if !anoms[0].Interval.Overlaps(iv(250, 259)) {
		t.Errorf("top anomaly %+v misses the hole", anoms[0])
	}
}
