package density

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grammarviz/internal/grammar"
	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/timeseries"
)

func iv(a, b int) timeseries.Interval { return timeseries.Interval{Start: a, End: b} }

func TestFromIntervalsBasic(t *testing.T) {
	curve := FromIntervals(10, []timeseries.Interval{iv(0, 4), iv(3, 6), iv(3, 3)})
	want := []int{1, 1, 1, 3, 2, 1, 1, 0, 0, 0}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
}

func TestFromIntervalsClipping(t *testing.T) {
	curve := FromIntervals(5, []timeseries.Interval{iv(-3, 2), iv(3, 99), iv(7, 9), iv(-5, -1)})
	want := []int{1, 1, 1, 1, 1}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
}

// Property: difference-array construction matches naive per-point counting.
func TestFromIntervalsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw % 30)
		ivs := make([]timeseries.Interval, k)
		for i := range ivs {
			a := rng.Intn(n)
			b := a + rng.Intn(n-a)
			ivs[i] = iv(a, b)
		}
		fast := FromIntervals(n, ivs)
		for p := 0; p < n; p++ {
			count := 0
			for _, v := range ivs {
				if v.Start <= p && p <= v.End {
					count++
				}
			}
			if fast[p] != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinAndRuns(t *testing.T) {
	curve := []int{3, 3, 1, 1, 2, 0, 0, 5}
	if Min(curve) != 0 {
		t.Errorf("Min = %d", Min(curve))
	}
	if Min(nil) != 0 {
		t.Error("Min(nil) should be 0")
	}
	minima := GlobalMinima(curve)
	if len(minima) != 1 || minima[0] != iv(5, 6) {
		t.Errorf("GlobalMinima = %v", minima)
	}
	below := Below(curve, 2)
	if len(below) != 2 || below[0] != iv(2, 3) || below[1] != iv(5, 6) {
		t.Errorf("Below = %v", below)
	}
	zero := ZeroCoverage(curve)
	if len(zero) != 1 || zero[0] != iv(5, 6) {
		t.Errorf("ZeroCoverage = %v", zero)
	}
}

func TestRunsEdges(t *testing.T) {
	// Run extends to the end of the curve.
	runs := Runs([]int{1, 0, 0}, func(v int) bool { return v == 0 })
	if len(runs) != 1 || runs[0] != iv(1, 2) {
		t.Errorf("Runs = %v", runs)
	}
	// Whole curve matches.
	runs = Runs([]int{0, 0}, func(v int) bool { return v == 0 })
	if len(runs) != 1 || runs[0] != iv(0, 1) {
		t.Errorf("Runs = %v", runs)
	}
	if got := GlobalMinima(nil); got != nil {
		t.Errorf("GlobalMinima(nil) = %v", got)
	}
}

func TestDetectRanking(t *testing.T) {
	//           0  1  2  3  4  5  6  7  8  9
	curve := []int{5, 0, 0, 5, 1, 1, 5, 2, 5, 0}
	got := Detect(curve, 3, 0)
	if len(got) != 4 {
		t.Fatalf("Detect = %+v", got)
	}
	// Two zero-mean intervals first, longer first.
	if got[0].Interval != iv(1, 2) || got[1].Interval != iv(9, 9) {
		t.Errorf("zero-density intervals misordered: %+v", got)
	}
	if got[2].Interval != iv(4, 5) || got[3].Interval != iv(7, 7) {
		t.Errorf("ranking wrong: %+v", got)
	}
	if got[0].MeanRule != 0 || got[2].MeanRule != 1 || got[3].MeanRule != 2 {
		t.Errorf("mean densities wrong: %+v", got)
	}
	// minLen filters short intervals.
	long := Detect(curve, 3, 2)
	if len(long) != 2 {
		t.Errorf("Detect minLen=2 = %+v", long)
	}
}

// Integration: a periodic series with one planted aberration — the global
// minimum of the density curve must overlap the aberration (the paper's
// Figure 2 behaviour).
func TestDensityFindsPlantedAnomaly(t *testing.T) {
	n := 1200
	period := 60.0
	anomaly := iv(600, 660)
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	for i := anomaly.Start; i <= anomaly.End; i++ {
		// Flatten one cycle: structurally unusual, same value range.
		ts[i] = ts[anomaly.Start]
	}
	d, err := sax.Discretize(ts, sax.Params{Window: 60, PAA: 6, Alphabet: 4}, sax.ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	rs, err := grammar.Build(d, sequitur.Induce(d.Strings()))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	curve := Curve(rs)
	if len(curve) != n {
		t.Fatalf("curve length %d", len(curve))
	}
	minima := GlobalMinima(curve)
	found := false
	for _, m := range minima {
		if m.Overlaps(iv(anomaly.Start-60, anomaly.End+60)) {
			found = true
		}
	}
	if !found {
		t.Errorf("global minima %v do not overlap planted anomaly %v", minima, anomaly)
	}
}

// Property: the curve sum equals the total covered length of all
// (clipped) intervals.
func TestCurveMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200) + 1
		k := rng.Intn(20)
		ivs := make([]timeseries.Interval, k)
		total := 0
		for i := range ivs {
			a := rng.Intn(n)
			b := a + rng.Intn(n-a)
			ivs[i] = iv(a, b)
			total += b - a + 1
		}
		curve := FromIntervals(n, ivs)
		sum := 0
		for _, v := range curve {
			sum += v
		}
		if sum != total {
			t.Fatalf("mass %d != total %d", sum, total)
		}
	}
}

func TestGlobalMinimaMargin(t *testing.T) {
	curve := []int{0, 5, 5, 1, 5, 5, 0}
	// Without margin the edges win.
	if got := GlobalMinima(curve); len(got) != 2 {
		t.Fatalf("GlobalMinima = %v", got)
	}
	// With margin 1 the interior minimum at index 3 wins, in full-curve
	// coordinates.
	got := GlobalMinimaMargin(curve, 1)
	if len(got) != 1 || got[0] != iv(3, 3) {
		t.Errorf("GlobalMinimaMargin = %v, want [[3,3]]", got)
	}
	// Degenerate margins.
	if got := GlobalMinimaMargin(curve, 4); got != nil {
		t.Errorf("oversize margin = %v, want nil", got)
	}
	if got := GlobalMinimaMargin(curve, -1); len(got) != 2 {
		t.Errorf("negative margin should behave like 0: %v", got)
	}
}

// TestCurveWithMatchesCurve pins the workspace reuse path: CurveWith on a
// zeroed scratch produces exactly Curve's result, including when the
// scratch is dirty-then-rezeroed between uses.
func TestCurveWithMatchesCurve(t *testing.T) {
	ts := make([]float64, 900)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/45) + 0.1*math.Sin(float64(i))
	}
	d, err := sax.Discretize(ts, sax.Params{Window: 45, PAA: 5, Alphabet: 4}, sax.ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	rs, err := grammar.Build(d, sequitur.Induce(d.Strings()))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := Curve(rs)
	diff := make([]int, rs.SeriesLen+1)
	for round := 0; round < 3; round++ {
		got := CurveWith(rs, diff)
		if len(got) != len(want) {
			t.Fatalf("round %d: length %d != %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: curve[%d] = %d, want %d", round, i, got[i], want[i])
			}
		}
		for i := range diff { // re-zero, as workspace.DiffScratch does
			diff[i] = 0
		}
	}
}
