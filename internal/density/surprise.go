package density

import (
	"math"
	"sort"

	"grammarviz/internal/timeseries"
)

// Surprise converts the rule density curve into a statistical
// anomalousness score: for each point, the -log10 probability that a
// Poisson variable with the curve's mean rate is as low as the observed
// density (a one-sided left-tail test). Section 4.1 suggests "a
// statistically sound criterion based on probabilities" as the ranking
// refinement over raw thresholds; this is that criterion. Scores are 0
// for points at or above the mean; a score of 3 means the observed
// coverage is a p < 10^-3 event under the series' own average
// compressibility.
func Surprise(curve []int) []float64 {
	out := make([]float64, len(curve))
	if len(curve) == 0 {
		return out
	}
	var sum float64
	for _, v := range curve {
		sum += float64(v)
	}
	lambda := sum / float64(len(curve))
	if lambda <= 0 {
		return out
	}
	// The curve takes few distinct values; cache the tail per value.
	cache := make(map[int]float64)
	for i, v := range curve {
		if float64(v) >= lambda {
			continue
		}
		s, ok := cache[v]
		if !ok {
			s = -poissonLogCDF10(v, lambda)
			cache[v] = s
		}
		out[i] = s
	}
	return out
}

// poissonLogCDF10 returns log10 P(X <= k) for X ~ Poisson(lambda),
// computed in log space for numerical stability.
func poissonLogCDF10(k int, lambda float64) float64 {
	logLambda := math.Log(lambda)
	// logTerm(j) = -lambda + j*ln(lambda) - lnGamma(j+1)
	logSum := math.Inf(-1)
	for j := 0; j <= k; j++ {
		lg, _ := math.Lgamma(float64(j + 1))
		term := -lambda + float64(j)*logLambda - lg
		logSum = logAdd(logSum, term)
	}
	return logSum / math.Ln10
}

// logAdd returns log(exp(a) + exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// SurpriseAnomaly is one interval of statistically significant
// incompressibility.
type SurpriseAnomaly struct {
	Interval timeseries.Interval
	Peak     float64 // highest surprise inside the interval
}

// SurpriseAnomalies returns the maximal intervals whose surprise stays at
// or above minSurprise (e.g. 3 for p < 10^-3), dropping intervals shorter
// than minLen, ranked by peak surprise descending. Margin points at each
// edge of the curve are ignored (edge undercoverage is structural, not
// statistical).
func SurpriseAnomalies(surprise []float64, minSurprise float64, minLen, margin int) []SurpriseAnomaly {
	if margin < 0 {
		margin = 0
	}
	if 2*margin >= len(surprise) {
		return nil
	}
	var out []SurpriseAnomaly
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		iv := timeseries.Interval{Start: start, End: end}
		if minLen <= 0 || iv.Len() >= minLen {
			a := SurpriseAnomaly{Interval: iv}
			for i := iv.Start; i <= iv.End; i++ {
				if surprise[i] > a.Peak {
					a.Peak = surprise[i]
				}
			}
			out = append(out, a)
		}
		start = -1
	}
	for i := margin; i < len(surprise)-margin; i++ {
		if surprise[i] >= minSurprise {
			if start < 0 {
				start = i
			}
		} else {
			flush(i - 1)
		}
	}
	flush(len(surprise) - margin - 1)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Peak > out[j].Peak })
	return out
}
