package density

import (
	"sort"

	"grammarviz/internal/timeseries"
)

// Anomaly is one ranked density-based anomaly candidate.
type Anomaly struct {
	Interval timeseries.Interval
	MeanRule float64 // mean rule density over the interval (lower = more anomalous)
	MinRule  int     // minimum density inside the interval
}

// Detect reports the candidate anomalies of a density curve: the maximal
// intervals with density below threshold, ranked by ascending mean density
// (ties broken by longer interval first, then by position). A minLen of
// 0 keeps all intervals; otherwise shorter intervals are dropped — the
// optional "minimal anomaly length" ranking criterion from Section 4.1.
func Detect(curve []int, threshold, minLen int) []Anomaly {
	ivs := Below(curve, threshold)
	out := make([]Anomaly, 0, len(ivs))
	for _, iv := range ivs {
		if minLen > 0 && iv.Len() < minLen {
			continue
		}
		a := Anomaly{Interval: iv, MinRule: curve[iv.Start]}
		sum := 0
		for i := iv.Start; i <= iv.End; i++ {
			sum += curve[i]
			if curve[i] < a.MinRule {
				a.MinRule = curve[i]
			}
		}
		a.MeanRule = float64(sum) / float64(iv.Len())
		out = append(out, a)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MeanRule != out[j].MeanRule {
			return out[i].MeanRule < out[j].MeanRule
		}
		if li, lj := out[i].Interval.Len(), out[j].Interval.Len(); li != lj {
			return li > lj
		}
		return out[i].Interval.Start < out[j].Interval.Start
	})
	return out
}
