// Package density implements the paper's rule density curve (Section 4.1):
// for every point of the time series, the number of grammar-rule
// occurrences that span ("cover") it. Intervals where the curve reaches
// its minima are algorithmically incompressible and are reported as
// anomaly candidates. Construction is linear in the series length plus the
// number of rule occurrences.
package density

import (
	"grammarviz/internal/grammar"
	"grammarviz/internal/timeseries"
)

// Curve computes the rule density curve for a rule set: curve[i] is the
// number of non-root rule occurrences covering point i. The difference
// array is sized exactly from the total occurrence count in one pass, so
// the construction allocates the curve, the scratch, and nothing else.
func Curve(rs *grammar.RuleSet) []int {
	return CurveWith(rs, make([]int, rs.SeriesLen+1))
}

// CurveWith is Curve with a caller-provided difference-array scratch
// (the internal/workspace reuse path). diff must have length
// rs.SeriesLen+1 and be zeroed; it is not retained, and only the returned
// curve is freshly allocated — the contract TestAnalyzeCtxWSReuseAllocs
// pins at runtime (warm-workspace analyses allocate strictly less than
// cold ones) and gvadlint's noalloc pass checks statically via the
// directive below: integrate's output make is the one sanctioned
// allocation, everything else works in place.
//
//gvad:noalloc
func CurveWith(rs *grammar.RuleSet, diff []int) []int {
	n := rs.SeriesLen
	for _, rec := range rs.Records {
		markIntervals(diff, n, rec.Occurrences)
	}
	return integrate(diff, n)
}

// FromIntervals computes the coverage curve of an arbitrary interval set
// over a series of length n using a difference array: O(n + len(ivs)).
// Intervals (or their parts) outside [0, n) are ignored.
func FromIntervals(n int, ivs []timeseries.Interval) []int {
	diff := make([]int, n+1)
	markIntervals(diff, n, ivs)
	return integrate(diff, n)
}

// markIntervals adds the interval set to the difference array, clamping to
// [0, n) and skipping intervals that fall entirely outside.
func markIntervals(diff []int, n int, ivs []timeseries.Interval) {
	for _, iv := range ivs {
		lo, hi := iv.Start, iv.End
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		if hi < lo {
			continue
		}
		diff[lo]++
		diff[hi+1]--
	}
}

// integrate turns a difference array into the coverage curve.
func integrate(diff []int, n int) []int {
	curve := make([]int, n)
	run := 0
	for i := 0; i < n; i++ {
		run += diff[i]
		curve[i] = run
	}
	return curve
}

// Min returns the minimum value of the curve; it returns 0 for an empty
// curve.
func Min(curve []int) int {
	if len(curve) == 0 {
		return 0
	}
	m := curve[0]
	for _, v := range curve[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Runs returns the maximal contiguous intervals where pred holds.
func Runs(curve []int, pred func(v int) bool) []timeseries.Interval {
	var out []timeseries.Interval
	start := -1
	for i, v := range curve {
		switch {
		case pred(v) && start < 0:
			start = i
		case !pred(v) && start >= 0:
			out = append(out, timeseries.Interval{Start: start, End: i - 1})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, timeseries.Interval{Start: start, End: len(curve) - 1})
	}
	return out
}

// GlobalMinima returns the contiguous intervals where the curve equals its
// global minimum — the paper's primary density-based anomaly report.
func GlobalMinima(curve []int) []timeseries.Interval {
	if len(curve) == 0 {
		return nil
	}
	m := Min(curve)
	return Runs(curve, func(v int) bool { return v == m })
}

// Below returns the contiguous intervals where the curve is strictly less
// than threshold — the fixed-threshold variant from Section 4.1.
func Below(curve []int, threshold int) []timeseries.Interval {
	return Runs(curve, func(v int) bool { return v < threshold })
}

// ZeroCoverage returns the intervals never covered by any rule. These are
// the frequency-0 candidates RRA prepends to its outer loop.
func ZeroCoverage(curve []int) []timeseries.Interval {
	return Runs(curve, func(v int) bool { return v == 0 })
}

// GlobalMinimaMargin is GlobalMinima restricted to
// curve[margin : len-margin]. The first and last window of a series are
// covered by fewer sliding windows than interior points, so their density
// is structurally depressed; trimming one window length removes that edge
// artifact from anomaly reports. Reported intervals use full-curve
// coordinates. A margin that leaves no interior points returns nil.
func GlobalMinimaMargin(curve []int, margin int) []timeseries.Interval {
	if margin < 0 {
		margin = 0
	}
	if 2*margin >= len(curve) {
		return nil
	}
	inner := curve[margin : len(curve)-margin]
	out := GlobalMinima(inner)
	for i := range out {
		out[i].Start += margin
		out[i].End += margin
	}
	return out
}
