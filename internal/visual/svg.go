package visual

import (
	"fmt"
	"io"
	"math"
	"strings"

	"grammarviz/internal/timeseries"
)

// SVG palette used by the figure harness.
const (
	ColorSeries    = "#1f77b4"
	ColorDensity   = "#2ca02c"
	ColorAnomaly   = "#d62728"
	ColorSecondary = "#ff7f0e"
	ColorMuted     = "#9467bd"
)

// Figure is a vertically stacked multi-panel SVG chart, the layout of the
// paper's density figures (series on top, density curve below, NN
// distances at the bottom).
type Figure struct {
	Width       int
	PanelHeight int
	panels      []panelSpec
}

type panelSpec struct {
	title     string
	series    []float64
	color     string
	marks     []timeseries.Interval // shaded interval overlays
	markColor string
	bars      []bar // vertical lines (NN distance panels)
	scatter   []ScatterPoint
}

type bar struct {
	x      int
	height float64
}

// ScatterPoint is one point of a scatter panel (Figure 10's parameter
// space views).
type ScatterPoint struct {
	X, Y  float64
	Color string
}

// NewFigure creates an empty figure. Width and panelHeight are in pixels;
// non-positive values select the defaults 960 and 160.
func NewFigure(width, panelHeight int) *Figure {
	if width <= 0 {
		width = 960
	}
	if panelHeight <= 0 {
		panelHeight = 160
	}
	return &Figure{Width: width, PanelHeight: panelHeight}
}

// AddSeries appends a line-chart panel with optional shaded interval
// overlays (in series coordinates).
func (f *Figure) AddSeries(title string, ts []float64, color string, marks []timeseries.Interval, markColor string) {
	if color == "" {
		color = ColorSeries
	}
	if markColor == "" {
		markColor = ColorAnomaly
	}
	f.panels = append(f.panels, panelSpec{
		title: title, series: ts, color: color, marks: marks, markColor: markColor,
	})
}

// AddDensity appends a density-curve panel (an int series) with marks.
func (f *Figure) AddDensity(title string, curve []int, marks []timeseries.Interval) {
	vals := make([]float64, len(curve))
	for i, v := range curve {
		vals[i] = float64(v)
	}
	f.AddSeries(title, vals, ColorDensity, marks, ColorAnomaly)
}

// AddBars appends a vertical-line panel: one line at each x with the given
// height — the paper's nearest-non-self-match distance panels. n is the
// series length that defines the x scale.
func (f *Figure) AddBars(title string, n int, xs []int, heights []float64) {
	p := panelSpec{title: title, color: ColorMuted, series: make([]float64, n)}
	for i := range xs {
		p.bars = append(p.bars, bar{x: xs[i], height: heights[i]})
	}
	f.panels = append(f.panels, p)
}

// AddScatter appends a scatter panel (x/y in data coordinates, scaled to
// the panel). Use distinct point colors to encode classes, e.g. parameter
// combinations where an algorithm succeeded vs failed.
func (f *Figure) AddScatter(title string, pts []ScatterPoint) {
	f.panels = append(f.panels, panelSpec{title: title, scatter: pts})
}

// Render writes the SVG document.
func (f *Figure) Render(w io.Writer) error {
	const pad = 28
	totalH := len(f.panels)*(f.PanelHeight+pad) + pad
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n",
		f.Width, totalH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	y := pad
	for _, p := range f.panels {
		f.renderPanel(&b, p, y)
		y += f.PanelHeight + pad
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *Figure) renderPanel(b *strings.Builder, p panelSpec, top int) {
	fmt.Fprintf(b, `<text x="4" y="%d" fill="#333">%s</text>`+"\n", top-8, escape(p.title))

	if len(p.scatter) > 0 {
		f.renderScatter(b, p, top)
		return
	}
	n := len(p.series)
	if n == 0 {
		return
	}

	xAt := func(i int) float64 { return float64(i) / float64(maxInt(n-1, 1)) * float64(f.Width-2) }

	if len(p.bars) > 0 {
		maxH := 0.0
		for _, bb := range p.bars {
			if bb.height > maxH {
				maxH = bb.height
			}
		}
		if maxH == 0 {
			maxH = 1
		}
		for _, bb := range p.bars {
			h := bb.height / maxH * float64(f.PanelHeight-4)
			x := xAt(bb.x)
			fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
				x, top+f.PanelHeight, x, float64(top+f.PanelHeight)-h, p.color)
		}
		return
	}

	lo, hi := minMax(p.series)
	if hi == lo {
		hi = lo + 1
	}
	yAt := func(v float64) float64 {
		return float64(top) + (hi-v)/(hi-lo)*float64(f.PanelHeight-4) + 2
	}

	// Shaded interval overlays behind the curve.
	for _, iv := range p.marks {
		x0, x1 := xAt(clampInt(iv.Start, 0, n-1)), xAt(clampInt(iv.End, 0, n-1))
		fmt.Fprintf(b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="0.22"/>`+"\n",
			x0, top, math.Max(x1-x0, 2), f.PanelHeight, p.markColor)
	}

	// Downsample long series to ~4 points per pixel for compact output.
	step := 1
	if n > f.Width*4 {
		step = n / (f.Width * 4)
	}
	var path strings.Builder
	for i := 0; i < n; i += step {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&path, "%s%.1f %.1f", cmd, xAt(i), yAt(p.series[i]))
	}
	fmt.Fprintf(b, `<path d="%s" fill="none" stroke="%s" stroke-width="1"/>`+"\n", path.String(), p.color)
}

func (f *Figure) renderScatter(b *strings.Builder, p panelSpec, top int) {
	loX, hiX := math.Inf(1), math.Inf(-1)
	loY, hiY := math.Inf(1), math.Inf(-1)
	for _, pt := range p.scatter {
		loX, hiX = math.Min(loX, pt.X), math.Max(hiX, pt.X)
		loY, hiY = math.Min(loY, pt.Y), math.Max(hiY, pt.Y)
	}
	if hiX == loX {
		hiX = loX + 1
	}
	if hiY == loY {
		hiY = loY + 1
	}
	for _, pt := range p.scatter {
		x := (pt.X-loX)/(hiX-loX)*float64(f.Width-8) + 4
		y := float64(top) + (hiY-pt.Y)/(hiY-loY)*float64(f.PanelHeight-8) + 4
		color := pt.Color
		if color == "" {
			color = ColorSeries
		}
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s" fill-opacity="0.8"/>`+"\n", x, y, color)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
