// Package visual renders time series, rule density curves and discord
// annotations as ASCII panels (for terminals) and SVG documents (for
// files) — the stand-in for the GrammarViz 2.0 GUI of the paper's
// Figures 11 and 12. Only the standard library is used.
package visual

import (
	"fmt"
	"math"
	"strings"

	"grammarviz/internal/timeseries"
)

// sparkChars are the eighth-block characters used by Sparkline.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders ts as a single line of width block characters. Values
// are min-max scaled; a constant series renders as a flat middle row.
func Sparkline(ts []float64, width int) string {
	if len(ts) == 0 || width <= 0 {
		return ""
	}
	cols := resample(ts, width)
	lo, hi := minMax(cols)
	var b strings.Builder
	for _, v := range cols {
		idx := 3 // flat middle for constant input
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkChars)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkChars) {
				idx = len(sparkChars) - 1
			}
		}
		b.WriteRune(sparkChars[idx])
	}
	return b.String()
}

// Panel renders ts as a height-row ASCII chart of the given width, with a
// title line and a y-axis range annotation.
func Panel(title string, ts []float64, width, height int) string {
	if len(ts) == 0 || width <= 0 || height <= 0 {
		return title + "\n(empty)\n"
	}
	cols := resample(ts, width)
	lo, hi := minMax(cols)
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		row := height - 1
		if hi > lo {
			row = int((hi - v) / (hi - lo) * float64(height-1))
		}
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][c] = '·'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3g .. %.3g]\n", title, lo, hi)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// MarkRow renders a width-column annotation row in which the given
// intervals (in series coordinates, series length n) are marked with '^'.
func MarkRow(n, width int, ivs []timeseries.Interval) string {
	if n <= 0 || width <= 0 {
		return ""
	}
	row := []rune(strings.Repeat(" ", width))
	for _, iv := range ivs {
		a := iv.Start * width / n
		b := iv.End * width / n
		for c := a; c <= b && c < width; c++ {
			if c >= 0 {
				row[c] = '^'
			}
		}
	}
	return string(row)
}

// DensityShadeRow renders the density curve as a width-column shading row
// (the Figure 12 view): darker shades mean higher rule density, spaces
// mean zero coverage — the white regions that pinpoint anomalies.
func DensityShadeRow(curve []int, width int) string {
	if len(curve) == 0 || width <= 0 {
		return ""
	}
	shades := []rune(" ░▒▓█")
	vals := make([]float64, len(curve))
	for i, v := range curve {
		vals[i] = float64(v)
	}
	cols := resample(vals, width)
	_, hi := minMax(cols)
	var b strings.Builder
	for _, v := range cols {
		idx := 0
		if hi > 0 {
			idx = int(v / hi * float64(len(shades)-1))
			if v > 0 && idx == 0 {
				idx = 1 // visible distinction between zero and non-zero
			}
		}
		b.WriteRune(shades[idx])
	}
	return b.String()
}

// resample reduces ts to width column means (or repeats values when
// upsampling).
func resample(ts []float64, width int) []float64 {
	out := make([]float64, width)
	n := len(ts)
	for c := 0; c < width; c++ {
		lo := c * n / width
		hi := (c + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		var sum float64
		for i := lo; i < hi; i++ {
			sum += ts[i]
		}
		out[c] = sum / float64(hi-lo)
	}
	return out
}

func minMax(ts []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range ts {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
