package visual

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"grammarviz/internal/timeseries"
)

func wave(n int) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(float64(i) / 5)
	}
	return ts
}

func TestSparkline(t *testing.T) {
	s := Sparkline(wave(200), 40)
	if utf8.RuneCountInString(s) != 40 {
		t.Errorf("width = %d, want 40", utf8.RuneCountInString(s))
	}
	for _, r := range s {
		if !strings.ContainsRune(string(sparkChars), r) {
			t.Errorf("unexpected rune %q", r)
		}
	}
	if Sparkline(nil, 10) != "" || Sparkline(wave(5), 0) != "" {
		t.Error("degenerate inputs should render empty")
	}
	flat := Sparkline([]float64{2, 2, 2, 2}, 4)
	if utf8.RuneCountInString(flat) != 4 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestPanel(t *testing.T) {
	out := Panel("test", wave(100), 50, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Fatalf("panel has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "test") {
		t.Errorf("title missing: %q", lines[0])
	}
	dots := strings.Count(out, "·")
	if dots < 40 {
		t.Errorf("only %d plotted points", dots)
	}
	if !strings.Contains(Panel("e", nil, 10, 5), "empty") {
		t.Error("empty series should render placeholder")
	}
}

func TestMarkRow(t *testing.T) {
	row := MarkRow(100, 10, []timeseries.Interval{{Start: 50, End: 59}})
	if utf8.RuneCountInString(row) != 10 {
		t.Fatalf("row = %q", row)
	}
	if row[5] != '^' {
		t.Errorf("mark missing: %q", row)
	}
	if strings.Count(row, "^") != 1 {
		t.Errorf("row = %q", row)
	}
	if MarkRow(0, 10, nil) != "" {
		t.Error("degenerate should be empty")
	}
}

func TestDensityShadeRow(t *testing.T) {
	curve := []int{0, 0, 5, 5, 10, 10, 0, 0}
	row := DensityShadeRow(curve, 8)
	if utf8.RuneCountInString(row) != 8 {
		t.Fatalf("row = %q", row)
	}
	runes := []rune(row)
	if runes[0] != ' ' || runes[len(runes)-1] != ' ' {
		t.Errorf("zero coverage should be blank: %q", row)
	}
	if runes[4] != '█' {
		t.Errorf("max density should be full block: %q", row)
	}
	if runes[2] == ' ' {
		t.Errorf("mid density should be visible: %q", row)
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure(400, 80)
	f.AddSeries("series", wave(300), "", []timeseries.Interval{{Start: 100, End: 150}}, "")
	f.AddDensity("density", []int{0, 1, 2, 3, 2, 1, 0}, nil)
	f.AddBars("nn", 300, []int{10, 200}, []float64{1.5, 3.0})
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<path", "<rect", "<line", "series", "density", "nn"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<line") != 2 {
		t.Errorf("want 2 bars, got %d", strings.Count(svg, "<line"))
	}
}

func TestFigureDefaults(t *testing.T) {
	f := NewFigure(0, 0)
	if f.Width != 960 || f.PanelHeight != 160 {
		t.Errorf("defaults = %d,%d", f.Width, f.PanelHeight)
	}
}

func TestEscape(t *testing.T) {
	if got := escape("a<b>&c"); got != "a&lt;b&gt;&amp;c" {
		t.Errorf("escape = %q", got)
	}
}

func TestResampleProperties(t *testing.T) {
	ts := wave(97)
	for _, width := range []int{1, 7, 50, 97, 200} {
		cols := resample(ts, width)
		if len(cols) != width {
			t.Fatalf("width %d: got %d columns", width, len(cols))
		}
		lo, hi := minMax(ts)
		for _, v := range cols {
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("width %d: column %v outside input range [%v,%v]", width, v, lo, hi)
			}
		}
	}
	// Upsampling repeats values rather than inventing them.
	up := resample([]float64{1, 2}, 4)
	if up[0] != 1 || up[3] != 2 {
		t.Errorf("upsample = %v", up)
	}
}

func TestFigureLongSeriesDownsampling(t *testing.T) {
	// A series far longer than 4 px/point must still render with a
	// bounded path (the SVG stays small).
	long := wave(100_000)
	f := NewFigure(200, 60)
	f.AddSeries("long", long, "", nil, "")
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if buf.Len() > 64*1024 {
		t.Errorf("SVG for a 100k series is %d bytes; downsampling broken", buf.Len())
	}
}

func TestFigureScatterPanel(t *testing.T) {
	f := NewFigure(300, 100)
	f.AddScatter("pts", []ScatterPoint{{X: 0, Y: 0}, {X: 1, Y: 2, Color: ColorAnomaly}})
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<circle") != 2 {
		t.Errorf("want 2 circles:\n%s", svg)
	}
	if !strings.Contains(svg, ColorAnomaly) {
		t.Error("point color missing")
	}
	// Degenerate single point must not divide by zero.
	g := NewFigure(300, 100)
	g.AddScatter("one", []ScatterPoint{{X: 5, Y: 5}})
	buf.Reset()
	if err := g.Render(&buf); err != nil {
		t.Fatalf("single point: %v", err)
	}
}

func TestSparklineMonotone(t *testing.T) {
	// A strictly increasing series yields non-decreasing block heights.
	ts := make([]float64, 64)
	for i := range ts {
		ts[i] = float64(i)
	}
	s := []rune(Sparkline(ts, 16))
	for i := 1; i < len(s); i++ {
		if indexOfSpark(s[i]) < indexOfSpark(s[i-1]) {
			t.Fatalf("sparkline not monotone: %q", string(s))
		}
	}
}

func indexOfSpark(r rune) int {
	for i, c := range sparkChars {
		if c == r {
			return i
		}
	}
	return -1
}
