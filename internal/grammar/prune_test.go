package grammar

import (
	"testing"
)

// coverageOf marks every point covered by any rule occurrence (a local
// stand-in for density.Curve, which lives upstream of this package).
func coverageOf(rs *RuleSet) []bool {
	covered := make([]bool, rs.SeriesLen)
	for _, rec := range rs.Records {
		for _, iv := range rec.Occurrences {
			for p := iv.Start; p <= iv.End; p++ {
				covered[p] = true
			}
		}
	}
	return covered
}

func TestPruneReducesRedundancy(t *testing.T) {
	rs, _ := buildFixture(t)
	pruned := Prune(rs, 1)
	if pruned.NumRules() == 0 {
		t.Fatal("pruning removed everything")
	}
	if pruned.NumRules() > rs.NumRules() {
		t.Fatalf("pruning grew the rule set: %d > %d", pruned.NumRules(), rs.NumRules())
	}
	// The kept rules must preserve the full coverage footprint: every
	// point covered before is covered after (greedy set cover terminates
	// only when no rule adds new points).
	before := coverageOf(rs)
	after := coverageOf(pruned)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("coverage footprint changed at %d: before=%v after=%v", i, before[i], after[i])
		}
	}
	// Records stay ordered by rule id and reference the shared grammar.
	for i := 1; i < len(pruned.Records); i++ {
		if pruned.Records[i].ID <= pruned.Records[i-1].ID {
			t.Fatal("pruned records not ordered by rule id")
		}
	}
	if pruned.Grammar != rs.Grammar || pruned.Disc != rs.Disc {
		t.Error("pruned set must share grammar and discretization")
	}
}

func TestPruneMinGain(t *testing.T) {
	rs, _ := buildFixture(t)
	loose := Prune(rs, 1)
	strict := Prune(rs, rs.SeriesLen/4)
	if strict.NumRules() > loose.NumRules() {
		t.Errorf("higher minGain kept more rules: %d > %d", strict.NumRules(), loose.NumRules())
	}
	// minGain <= 0 behaves like 1.
	def := Prune(rs, 0)
	if def.NumRules() != loose.NumRules() {
		t.Errorf("minGain 0 kept %d rules, 1 kept %d", def.NumRules(), loose.NumRules())
	}
}

func TestPruneDeterministic(t *testing.T) {
	rs, _ := buildFixture(t)
	a := Prune(rs, 1)
	b := Prune(rs, 1)
	if a.NumRules() != b.NumRules() {
		t.Fatal("non-deterministic pruning")
	}
	for i := range a.Records {
		if a.Records[i].ID != b.Records[i].ID {
			t.Fatal("non-deterministic rule selection")
		}
	}
}

func TestPruneEmpty(t *testing.T) {
	rs := &RuleSet{SeriesLen: 100, Window: 10}
	pruned := Prune(rs, 1)
	if pruned.NumRules() != 0 {
		t.Errorf("pruning empty set = %d rules", pruned.NumRules())
	}
}
