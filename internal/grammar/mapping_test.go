package grammar

import (
	"testing"
)

// WordOccurrences and Occurrences describe the same events: equal counts,
// and each word range maps to its interval via WordInterval.
func TestWordOccurrencesConsistent(t *testing.T) {
	rs, _ := buildFixture(t)
	for _, rec := range rs.Records {
		if len(rec.WordOccurrences) != len(rec.Occurrences) {
			t.Fatalf("R%d: %d word ranges vs %d intervals",
				rec.ID, len(rec.WordOccurrences), len(rec.Occurrences))
		}
		for i, wr := range rec.WordOccurrences {
			if wr[0] > wr[1] {
				t.Fatalf("R%d: inverted word range %v", rec.ID, wr)
			}
			if got := rs.WordInterval(wr[0], wr[1]); got != rec.Occurrences[i] {
				t.Fatalf("R%d occurrence %d: WordInterval(%v) = %v, stored %v",
					rec.ID, i, wr, got, rec.Occurrences[i])
			}
			// The word range must span exactly WordLen words.
			if wr[1]-wr[0]+1 != rec.WordLen {
				t.Fatalf("R%d occurrence %d: word range %v spans %d words, rule derives %d",
					rec.ID, i, wr, wr[1]-wr[0]+1, rec.WordLen)
			}
		}
	}
}

// UncoveredWordRuns partitions the word axis together with rule coverage:
// a word is in some run if and only if no rule occurrence contains it.
func TestUncoveredWordRunsPartition(t *testing.T) {
	rs, d := buildFixture(t)
	n := len(d.Words)
	covered := make([]bool, n)
	for _, rec := range rs.Records {
		for _, wr := range rec.WordOccurrences {
			for i := wr[0]; i <= wr[1]; i++ {
				covered[i] = true
			}
		}
	}
	inRun := make([]bool, n)
	runs := rs.UncoveredWordRuns()
	for _, run := range runs {
		for i := run[0]; i <= run[1]; i++ {
			if inRun[i] {
				t.Fatalf("word %d in two runs", i)
			}
			inRun[i] = true
		}
	}
	for i := 0; i < n; i++ {
		if covered[i] == inRun[i] {
			t.Fatalf("word %d: covered=%v inRun=%v (must be complements)", i, covered[i], inRun[i])
		}
	}
	// Runs are maximal: consecutive runs cannot touch.
	for i := 1; i < len(runs); i++ {
		if runs[i][0] <= runs[i-1][1]+1 {
			t.Fatalf("runs %v and %v not maximal/disjoint", runs[i-1], runs[i])
		}
	}
}

// A derivation-tree identity: summing WordLen*Frequency over rules and
// adding uncovered top-level terminals must be at least the word count
// (nested rules cover words multiple times, so >=).
func TestCoverageLowerBound(t *testing.T) {
	rs, d := buildFixture(t)
	totalCoverage := 0
	for _, rec := range rs.Records {
		totalCoverage += rec.WordLen * rec.Frequency
	}
	uncovered := 0
	for _, run := range rs.UncoveredWordRuns() {
		uncovered += run[1] - run[0] + 1
	}
	if totalCoverage+uncovered < len(d.Words) {
		t.Errorf("coverage %d + uncovered %d < words %d", totalCoverage, uncovered, len(d.Words))
	}
}
