package grammar

import (
	"math"
	"strings"
	"testing"

	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
)

// periodic builds a sine with one flattened (anomalous) cycle.
func periodic(n int, period float64, anomalyAt, anomalyLen int) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	for i := anomalyAt; i < anomalyAt+anomalyLen && i < n; i++ {
		ts[i] = 0.05 * math.Sin(2*math.Pi*float64(i)/period)
	}
	return ts
}

func buildFixture(t *testing.T) (*RuleSet, *sax.Discretization) {
	t.Helper()
	ts := periodic(800, 40, 400, 60)
	p := sax.Params{Window: 40, PAA: 4, Alphabet: 4}
	d, err := sax.Discretize(ts, p, sax.ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	g := sequitur.Induce(d.Strings())
	rs, err := Build(d, g)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return rs, d
}

func TestBuildBasics(t *testing.T) {
	rs, d := buildFixture(t)
	if rs.NumRules() == 0 {
		t.Fatal("periodic series should induce rules")
	}
	if rs.SeriesLen != 800 || rs.Window != 40 {
		t.Errorf("SeriesLen/Window = %d/%d", rs.SeriesLen, rs.Window)
	}
	for _, rec := range rs.Records {
		if rec.Frequency != len(rec.Occurrences) {
			t.Errorf("R%d Frequency %d != %d occurrences", rec.ID, rec.Frequency, len(rec.Occurrences))
		}
		if rec.Frequency < 2 {
			t.Errorf("R%d used %d times; Sequitur utility should guarantee >= 2", rec.ID, rec.Frequency)
		}
		for _, iv := range rec.Occurrences {
			if !iv.Valid(rs.SeriesLen) {
				t.Errorf("R%d occurrence %v out of bounds", rec.ID, iv)
			}
			if iv.Len() < rs.Window {
				t.Errorf("R%d occurrence %v shorter than one window", rec.ID, iv)
			}
		}
		if rec.MinLen > rec.MaxLen || rec.MeanLen < float64(rec.MinLen) || rec.MeanLen > float64(rec.MaxLen) {
			t.Errorf("R%d length stats inconsistent: min=%d mean=%v max=%d",
				rec.ID, rec.MinLen, rec.MeanLen, rec.MaxLen)
		}
		if rec.WordLen < 2 {
			t.Errorf("R%d derives %d words, want >= 2", rec.ID, rec.WordLen)
		}
		if len(strings.Fields(rec.Expanded)) != rec.WordLen {
			t.Errorf("R%d Expanded %q does not match WordLen %d", rec.ID, rec.Expanded, rec.WordLen)
		}
	}
	_ = d
}

// Occurrence intervals must start exactly at recorded word offsets and the
// i-th rule occurrence's words must equal the rule's expansion.
func TestOccurrencesAlignWithWords(t *testing.T) {
	rs, d := buildFixture(t)
	offsetSet := make(map[int]bool)
	for _, w := range d.Words {
		offsetSet[w.Offset] = true
	}
	for _, rec := range rs.Records {
		for _, iv := range rec.Occurrences {
			if !offsetSet[iv.Start] {
				t.Errorf("R%d occurrence starts at %d which is not a word offset", rec.ID, iv.Start)
			}
		}
	}
}

// Cross-check with a naive occurrence finder: substring search of the
// rule's expanded word sequence within the full word sequence must find at
// least the recorded occurrences at the same word positions.
func TestOccurrencesMatchNaiveScan(t *testing.T) {
	rs, d := buildFixture(t)
	words := d.Strings()
	joined := " " + strings.Join(words, " ") + " "
	for _, rec := range rs.Records {
		needle := " " + rec.Expanded + " "
		if !strings.Contains(joined, needle) {
			t.Errorf("R%d expansion %q not found in word stream", rec.ID, rec.Expanded)
		}
		// Derivation-order occurrences must be non-decreasing in start.
		for i := 1; i < len(rec.Occurrences); i++ {
			if rec.Occurrences[i].Start < rec.Occurrences[i-1].Start {
				t.Errorf("R%d occurrences out of order: %v", rec.ID, rec.Occurrences)
			}
		}
	}
}

func TestBuildMismatch(t *testing.T) {
	_, d := buildFixture(t)
	other := sequitur.Induce([]string{"zz", "yy", "zz", "yy"})
	if _, err := Build(d, other); err == nil {
		t.Error("mismatched grammar should error")
	}
}

func TestIntervalClamping(t *testing.T) {
	rs, _ := buildFixture(t)
	for _, rec := range rs.Records {
		for _, iv := range rec.Occurrences {
			if iv.End >= rs.SeriesLen {
				t.Errorf("R%d occurrence %v not clamped", rec.ID, iv)
			}
		}
	}
}

func TestSize(t *testing.T) {
	rs, _ := buildFixture(t)
	if rs.Size() <= 0 {
		t.Errorf("Size = %d", rs.Size())
	}
	// Size includes the root body plus all rule bodies.
	manual := len(rs.Grammar.Rules[0].Body)
	for _, rec := range rs.Records {
		manual += len(rs.Grammar.Rules[rec.ID].Body)
	}
	if rs.Size() != manual {
		t.Errorf("Size = %d, manual = %d", rs.Size(), manual)
	}
}
