package grammar

import "sort"

// Prune returns a reduced copy of the rule set keeping only rules that
// contribute new coverage, using the greedy set-cover heuristic of
// GrammarViz 2.0 (the "Prune rules" operation visible in the paper's
// Figure 12 screenshot): repeatedly keep the rule whose occurrences cover
// the most not-yet-covered points, until no rule adds at least minGain
// new points (minGain <= 0 selects 1). The grammar and discretization are
// shared with the original; only Records is filtered.
//
// Pruning exists for presentation and rule-inspection workflows — the
// detectors intentionally use the full rule set.
func Prune(rs *RuleSet, minGain int) *RuleSet {
	if minGain <= 0 {
		minGain = 1
	}
	covered := make([]bool, rs.SeriesLen)
	remaining := make([]int, len(rs.Records))
	for i := range remaining {
		remaining[i] = i
	}
	// Deterministic processing: stable order by rule id.
	sort.Ints(remaining)

	var kept []int
	for {
		bestIdx, bestGain := -1, minGain-1
		for _, ri := range remaining {
			if ri < 0 {
				continue
			}
			gain := 0
			for _, iv := range rs.Records[ri].Occurrences {
				for p := iv.Start; p <= iv.End; p++ {
					if !covered[p] {
						gain++
					}
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = ri
			}
		}
		if bestIdx < 0 {
			break
		}
		kept = append(kept, bestIdx)
		for _, iv := range rs.Records[bestIdx].Occurrences {
			for p := iv.Start; p <= iv.End; p++ {
				covered[p] = true
			}
		}
		for i, ri := range remaining {
			if ri == bestIdx {
				remaining[i] = -1
			}
		}
	}

	sort.Ints(kept)
	out := &RuleSet{
		Grammar:   rs.Grammar,
		Disc:      rs.Disc,
		SeriesLen: rs.SeriesLen,
		Window:    rs.Window,
		Records:   make([]RuleRecord, len(kept)),
	}
	for i, ri := range kept {
		out.Records[i] = rs.Records[ri]
	}
	return out
}
