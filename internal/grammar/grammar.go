// Package grammar post-processes an induced Sequitur grammar for time
// series analysis: it maps every rule occurrence back to the interval of
// the original series it derives (Section 3.4 of the paper), and exposes
// the per-rule statistics (usage frequency, lengths) the detectors need.
package grammar

import (
	"errors"
	"fmt"

	"grammarviz/internal/sax"
	"grammarviz/internal/sequitur"
	"grammarviz/internal/timeseries"
)

// ErrMismatch is returned when the discretization and the grammar do not
// describe the same word sequence.
var ErrMismatch = errors.New("grammar: discretization and grammar disagree")

// RuleRecord describes one non-root grammar rule mapped onto the series.
type RuleRecord struct {
	ID        int    // dense Sequitur rule id (>= 1)
	Str       string // rule body in the paper's notation, e.g. "R2 cba"
	Expanded  string // fully expanded body, space-separated SAX words
	Frequency int    // rule usage frequency (occurrences in the derivation)
	WordLen   int    // number of SAX words the rule derives

	// Occurrences are the series intervals the rule's occurrences cover,
	// in derivation order.
	Occurrences []timeseries.Interval

	// WordOccurrences are the same occurrences as inclusive index ranges
	// into the discretization's word sequence.
	WordOccurrences [][2]int

	MinLen, MaxLen int     // shortest/longest occurrence, in points
	MeanLen        float64 // mean occurrence length, in points
}

// RuleSet is the full mapping of a grammar onto its source series.
type RuleSet struct {
	Grammar   *sequitur.Grammar
	Disc      *sax.Discretization
	SeriesLen int
	Window    int
	Records   []RuleRecord // indexed by rule id - 1 (rule 0, the root, is excluded)
}

// Build induces nothing itself: it takes the discretization that produced
// the word sequence and the grammar induced from it, and computes every
// rule's series intervals. The grammar's root must expand to exactly the
// discretization's words.
func Build(d *sax.Discretization, g *sequitur.Grammar) (*RuleSet, error) {
	root := g.Expand(0)
	if len(root) != len(d.Words) {
		return nil, fmt.Errorf("%w: %d words vs %d-token expansion", ErrMismatch, len(d.Words), len(root))
	}
	for i, id := range root {
		if g.Tokens[id] != d.Words[i].Str {
			return nil, fmt.Errorf("%w: word %d is %q, expansion has %q", ErrMismatch, i, d.Words[i].Str, g.Tokens[id])
		}
	}

	rs := &RuleSet{
		Grammar:   g,
		Disc:      d,
		SeriesLen: d.SeriesLen,
		Window:    d.Params.Window,
		Records:   make([]RuleRecord, len(g.Rules)-1),
	}
	for id := 1; id < len(g.Rules); id++ {
		rec := &rs.Records[id-1]
		rec.ID = id
		rec.Str = g.RuleString(id)
		rec.WordLen = len(g.Expand(id))
		rec.Expanded = joinTokens(g.Tokens, g.Expand(id))
	}

	// Walk the derivation tree once, recording every non-terminal
	// occurrence as a word-index range, then convert to series intervals.
	var walk func(ruleID, wordPos int) int
	walk = func(ruleID, wordPos int) int {
		for _, s := range g.Rules[ruleID].Body {
			if !s.IsRule {
				wordPos++
				continue
			}
			span := len(g.Expand(s.ID))
			iv := rs.wordRangeToInterval(wordPos, wordPos+span-1)
			rec := &rs.Records[s.ID-1]
			rec.Occurrences = append(rec.Occurrences, iv)
			rec.WordOccurrences = append(rec.WordOccurrences, [2]int{wordPos, wordPos + span - 1})
			walk(s.ID, wordPos)
			wordPos += span
		}
		return wordPos
	}
	walk(0, 0)

	for i := range rs.Records {
		rec := &rs.Records[i]
		rec.Frequency = len(rec.Occurrences)
		if rec.Frequency == 0 {
			continue
		}
		rec.MinLen = rec.Occurrences[0].Len()
		var sum int
		for _, iv := range rec.Occurrences {
			l := iv.Len()
			sum += l
			if l < rec.MinLen {
				rec.MinLen = l
			}
			if l > rec.MaxLen {
				rec.MaxLen = l
			}
		}
		rec.MeanLen = float64(sum) / float64(rec.Frequency)
	}
	return rs, nil
}

// wordRangeToInterval converts an inclusive word-index range of the
// derivation into the series interval it covers: from the first word's
// offset through the last word's window end, clamped to the series.
func (rs *RuleSet) wordRangeToInterval(firstWord, lastWord int) timeseries.Interval {
	start := rs.Disc.Words[firstWord].Offset
	end := rs.Disc.Words[lastWord].Offset + rs.Window - 1
	if end >= rs.SeriesLen {
		end = rs.SeriesLen - 1
	}
	return timeseries.Interval{Start: start, End: end}
}

// WordInterval maps an inclusive word-index range of the discretization to
// the series interval it covers.
func (rs *RuleSet) WordInterval(firstWord, lastWord int) timeseries.Interval {
	return rs.wordRangeToInterval(firstWord, lastWord)
}

// UncoveredWordRuns returns the maximal runs of consecutive words that are
// not part of any rule occurrence — "continuous subsequences of the
// discretized time series that do not form any rule" (Section 4.2), the
// frequency-0 candidates of the RRA search.
func (rs *RuleSet) UncoveredWordRuns() [][2]int {
	n := len(rs.Disc.Words)
	covered := make([]bool, n)
	for _, rec := range rs.Records {
		for _, wr := range rec.WordOccurrences {
			for i := wr[0]; i <= wr[1]; i++ {
				covered[i] = true
			}
		}
	}
	var out [][2]int
	start := -1
	for i := 0; i < n; i++ {
		switch {
		case !covered[i] && start < 0:
			start = i
		case covered[i] && start >= 0:
			out = append(out, [2]int{start, i - 1})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, [2]int{start, n - 1})
	}
	return out
}

// NumRules returns the number of non-root rules.
func (rs *RuleSet) NumRules() int { return len(rs.Records) }

// Size returns the grammar size: the total number of symbols on the
// right-hand sides of all rules including the root. This is the "grammar
// size" axis of the paper's Figure 10.
func (rs *RuleSet) Size() int {
	size := 0
	for _, r := range rs.Grammar.Rules {
		size += len(r.Body)
	}
	return size
}

// joinTokens renders token ids as a space-separated string without
// materializing an intermediate []string.
func joinTokens(tokens []string, ids []int) string {
	n := 0
	for _, id := range ids {
		n += len(tokens[id]) + 1
	}
	if n == 0 {
		return ""
	}
	buf := make([]byte, 0, n-1)
	for i, id := range ids {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, tokens[id]...)
	}
	return string(buf)
}
