package sax

import (
	"context"
	"fmt"
	"runtime"

	"grammarviz/internal/timeseries"
	"grammarviz/internal/worker"
)

// Reduction selects the numerosity-reduction strategy applied during
// sliding-window discretization (Section 3.2 of the paper; the three modes
// mirror GrammarViz 2.0).
type Reduction int

const (
	// ReductionExact records a word only when it differs from the
	// previous recorded word. It is the paper's default strategy and the
	// zero value, so an unset Reduction selects it.
	ReductionExact Reduction = iota
	// ReductionNone records every window's word.
	ReductionNone
	// ReductionMINDIST records a word only when its MINDIST to the
	// previous recorded word is non-zero, i.e. some letter pair is more
	// than one region apart. This is a looser filter than Exact.
	ReductionMINDIST
)

// String returns the GrammarViz-style name of the strategy.
func (r Reduction) String() string {
	switch r {
	case ReductionNone:
		return "NONE"
	case ReductionExact:
		return "EXACT"
	case ReductionMINDIST:
		return "MINDIST"
	default:
		return fmt.Sprintf("Reduction(%d)", int(r))
	}
}

// Word is one recorded SAX word together with the index of the window it
// was produced from (the word's offset into the original time series).
type Word struct {
	Str    string // the SAX letters
	Offset int    // start index of the source window in the time series

	// Code is the packed integer form of Str (see WordCodec): the
	// identity the grammar-induction hot path hashes instead of the
	// string. It is 0 when the discretization's parameters do not fit a
	// uint64 code (Discretization.Coded == false).
	Code uint64
}

// Discretization is the result of sliding-window SAX discretization after
// numerosity reduction: an ordered sequence of words with their offsets.
type Discretization struct {
	Words     []Word // recorded words in time order
	SeriesLen int    // length of the source series
	Params    Params // parameters used
	Raw       int    // number of windows before numerosity reduction

	// Coded reports that every Word carries its packed uint64 Code
	// (true whenever PAA * ceil(log2(Alphabet)) <= 64; see WordCodec).
	// When false, consumers must use the string path.
	Coded bool

	// Fallbacks counts the windows the incremental encoder handed to the
	// naive encoder because a letter or flat-window decision was within
	// its floating-point error bound of a boundary. Diagnostic only.
	Fallbacks int
}

// minWindowsPerChunk bounds the parallel fan-out: chunks smaller than this
// spend more time stitching than encoding.
const minWindowsPerChunk = 256

// cancelStride is how many windows a chunk encodes between two
// cancellation polls: cancel-to-return latency is bounded by the cost of
// encoding cancelStride windows. It is a power of two so the poll test
// compiles to a mask.
const cancelStride = 512

// testHookChunk, when non-nil, runs at the start of every parallel chunk
// encoding. It exists so tests can inject a panic into a worker goroutine
// and assert the panic-containment contract; it is never set in
// production.
var testHookChunk func(lo, hi int)

// Discretize slides a window of p.Window over ts, SAX-encodes every
// window, and applies the numerosity-reduction strategy. The word order
// (and each word's offset) is preserved — the ordering is what makes
// grammar induction meaningful (Section 3.1).
//
// Encoding is incremental: series-level prefix sums give each window's
// mean/std and PAA in O(paa) rather than O(window), with a guarded
// fallback to the naive encoder that keeps the output byte-identical to
// DiscretizeReference. Discretize runs on one goroutine; use
// DiscretizeWorkers to fan the window range out across cores.
func Discretize(ts []float64, p Params, red Reduction) (*Discretization, error) {
	return DiscretizeWorkers(ts, p, red, 1)
}

// DiscretizeWorkers is Discretize fanned out over up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). The window range is split into
// contiguous chunks, each chunk is encoded and run-collapsed
// independently, and the chunks are stitched with numerosity reduction
// re-applied at the seams — the result is byte-identical to the serial
// output for every strategy and worker count.
func DiscretizeWorkers(ts []float64, p Params, red Reduction, workers int) (*Discretization, error) {
	return DiscretizeCtx(context.Background(), ts, p, red, workers)
}

// DiscretizeCtx is DiscretizeWorkers with cooperative cancellation: every
// chunk polls ctx at bounded intervals (cancelStride windows), so a
// cancelled or expired context returns a ctx.Err()-wrapped error promptly
// instead of encoding the remaining windows. A panic on a chunk goroutine
// is recovered into the returned error (never a process crash), and the
// sibling chunks are cancelled. With a never-cancelled context the output
// is byte-identical to Discretize for every worker count.
//
// The series must be finite: a NaN or infinite value is rejected with an
// error wrapping timeseries.ErrInvalidValue that names the first bad
// index.
func DiscretizeCtx(ctx context.Context, ts []float64, p Params, red Reduction, workers int) (*Discretization, error) {
	if err := p.Validate(len(ts)); err != nil {
		return nil, err
	}
	if err := timeseries.ValidateFinite(ts); err != nil {
		return nil, fmt.Errorf("sax: %w", err)
	}
	nWin := len(ts) - p.Window + 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (nWin + minWindowsPerChunk - 1) / minWindowsPerChunk; workers > max {
		workers = max
	}
	st, err := newSlidingStats(ts, p)
	if err != nil {
		return nil, err
	}

	// Phase 1: encode each chunk of window starts independently. For the
	// reducing strategies chunks collapse runs of identical words as they
	// go; ReductionNone must keep every word. When the parameters fit a
	// uint64 word code, chunks record only codes and offsets — strings are
	// rendered once, post-stitch, into a single shared backing array, so
	// the per-window loop allocates nothing for words.
	collapse := red != ReductionNone
	codec := NewWordCodec(p.PAA, p.Alphabet)
	chunks := make([]chunkResult, workers)
	if workers <= 1 {
		we, err := st.newWindowEncoder()
		if err != nil {
			return nil, err
		}
		chunks[0], err = discretizeChunk(ctx, we, codec, 0, nWin, collapse)
		if err != nil {
			return nil, fmt.Errorf("sax: discretize: %w", err)
		}
	} else {
		g, gctx := worker.WithContext(ctx)
		for w := 0; w < workers; w++ {
			w, lo, hi := w, w*nWin/workers, (w+1)*nWin/workers
			g.Go(func() error {
				if testHookChunk != nil {
					testHookChunk(lo, hi)
				}
				we, err := st.newWindowEncoder()
				if err != nil {
					return err
				}
				chunks[w], err = discretizeChunk(gctx, we, codec, lo, hi, collapse)
				return err
			})
		}
		if err := g.Wait(); err != nil {
			return nil, fmt.Errorf("sax: discretize: %w", err)
		}
	}

	d := &Discretization{SeriesLen: len(ts), Params: p, Raw: nWin, Coded: codec.Fits()}
	for _, c := range chunks {
		d.Fallbacks += c.fallbacks
	}
	d.Words = stitch(chunks, red, codec)
	if d.Coded {
		renderStrings(d.Words, codec)
	}
	if len(d.Words) == 0 {
		return nil, fmt.Errorf("sax: discretization produced no words")
	}
	return d, nil
}

type chunkResult struct {
	words     []Word // all words (NONE) or run representatives (EXACT/MINDIST)
	fallbacks int
}

// sameWord reports whether two recorded words are identical, comparing
// packed codes on the coded path and strings otherwise.
func sameWord(a, b Word, coded bool) bool {
	if coded {
		return a.Code == b.Code
	}
	return a.Str == b.Str
}

// discretizeChunk encodes the windows starting in [lo, hi). With collapse
// set, only the first word of each run of identical words is kept — the
// exact numerosity reduction, and the run representatives the MINDIST
// filter needs (a MINDIST decision is constant across a run, so one
// decision per run at the run's first offset reproduces the serial scan).
// The context is polled every cancelStride windows; polling never alters
// the encoded output. On the coded path (codec.Fits()) no word strings
// are built at all — Str stays empty until renderStrings.
func discretizeChunk(ctx context.Context, we *windowEncoder, codec WordCodec, lo, hi int, collapse bool) (chunkResult, error) {
	poll := ctx.Done() != nil
	coded := codec.Fits()
	words := make([]Word, 0, hi-lo) // sized from the chunk's raw window count
	var prev Word
	have := false
	for s := lo; s < hi; s++ {
		if poll && (s-lo)&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return chunkResult{}, err
			}
		}
		buf, err := we.encode(s)
		if err != nil {
			return chunkResult{}, err
		}
		w := Word{Offset: s}
		if coded {
			w.Code = codec.Pack(buf)
		} else if collapse && have && string(buf) == prev.Str {
			continue // comparison does not allocate; no string is built
		} else {
			w.Str = string(buf)
		}
		if collapse && have && coded && w.Code == prev.Code {
			continue
		}
		words = append(words, w)
		prev, have = w, true
	}
	return chunkResult{words: words, fallbacks: we.fallbacks}, nil
}

// stitch concatenates per-chunk results into the final word sequence,
// re-applying the reduction at chunk seams so the output is identical to a
// serial scan.
func stitch(chunks []chunkResult, red Reduction, codec WordCodec) []Word {
	coded := codec.Fits()
	total := 0
	for _, c := range chunks {
		total += len(c.words)
	}
	out := make([]Word, 0, total)
	if red == ReductionNone {
		for _, c := range chunks {
			out = append(out, c.words...)
		}
		return out
	}
	// Merge run representatives across seams: a chunk's leading run may
	// continue the previous chunk's trailing run.
	reps := out
	var last Word
	haveLast := false
	for _, c := range chunks {
		ws := c.words
		if haveLast && len(ws) > 0 && sameWord(ws[0], last, coded) {
			ws = ws[1:]
		}
		reps = append(reps, ws...)
		if len(ws) > 0 {
			last, haveLast = ws[len(ws)-1], true
		} else if len(c.words) > 0 {
			last, haveLast = c.words[len(c.words)-1], true
		}
	}
	if red == ReductionExact {
		return reps // run collapsing *is* the exact reduction
	}
	// MINDIST: keep a representative only when it is more than one region
	// away from the previously recorded word. Filtering in place is safe —
	// the write index never passes the read index.
	words := reps[:0]
	var prev Word
	havePrev := false
	for _, w := range reps {
		if havePrev {
			var zero bool
			if coded {
				zero = codec.MINDISTZero(w.Code, prev.Code)
			} else {
				zero = wordsMINDISTZero(w.Str, prev.Str)
			}
			if zero {
				continue
			}
		}
		words = append(words, w)
		prev, havePrev = w, true
	}
	return words
}

// renderStrings materializes the string form of every coded word for the
// API/debug boundary. All strings slice one shared backing array, so the
// whole word list costs two allocations regardless of length.
func renderStrings(words []Word, codec WordCodec) {
	paa := codec.PAA()
	buf := make([]byte, 0, len(words)*paa)
	for i := range words {
		buf = codec.AppendDecode(buf, words[i].Code)
	}
	s := string(buf)
	for i := range words {
		words[i].Str = s[i*paa : (i+1)*paa]
	}
}

// DiscretizeReference is the naive discretizer the incremental and
// parallel paths are tested against: every window is z-normalized, PAA-
// reduced and lettered from scratch, exactly as the paper describes it. It
// is retained as the correctness oracle for equivalence tests and as the
// "before" side of benchmarks.
func DiscretizeReference(ts []float64, p Params, red Reduction) (*Discretization, error) {
	if err := p.Validate(len(ts)); err != nil {
		return nil, err
	}
	if err := timeseries.ValidateFinite(ts); err != nil {
		return nil, fmt.Errorf("sax: %w", err)
	}
	enc, err := NewEncoder(p)
	if err != nil {
		return nil, err
	}
	codec := NewWordCodec(p.PAA, p.Alphabet)
	d := &Discretization{SeriesLen: len(ts), Params: p, Coded: codec.Fits()}
	prev := ""
	for start := 0; start+p.Window <= len(ts); start++ {
		word, err := enc.Encode(ts[start : start+p.Window])
		if err != nil {
			return nil, err
		}
		d.Raw++
		switch red {
		case ReductionExact:
			if word == prev {
				continue
			}
		case ReductionMINDIST:
			if prev != "" && wordsMINDISTZero(word, prev) {
				continue
			}
		}
		w := Word{Str: word, Offset: start}
		if d.Coded {
			w.Code = codec.PackString(word)
		}
		d.Words = append(d.Words, w)
		prev = word
	}
	if len(d.Words) == 0 {
		return nil, fmt.Errorf("sax: discretization produced no words")
	}
	return d, nil
}

// wordsMINDISTZero reports whether MINDIST between two equal-length words
// is zero, i.e. every letter pair is at most one region apart.
func wordsMINDISTZero(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		d := int(a[i]) - int(b[i])
		if d < -1 || d > 1 {
			return false
		}
	}
	return true
}

// Strings returns just the word strings, in order. Useful as grammar
// induction input.
func (d *Discretization) Strings() []string {
	out := make([]string, len(d.Words))
	for i, w := range d.Words {
		out[i] = w.Str
	}
	return out
}

// Offsets returns each recorded word's offset into the source series.
func (d *Discretization) Offsets() []int {
	out := make([]int, len(d.Words))
	for i, w := range d.Words {
		out[i] = w.Offset
	}
	return out
}

// ReductionRatio returns the fraction of raw windows removed by numerosity
// reduction, in [0, 1).
func (d *Discretization) ReductionRatio() float64 {
	if d.Raw == 0 {
		return 0
	}
	return 1 - float64(len(d.Words))/float64(d.Raw)
}
