package sax

import (
	"fmt"
)

// Reduction selects the numerosity-reduction strategy applied during
// sliding-window discretization (Section 3.2 of the paper; the three modes
// mirror GrammarViz 2.0).
type Reduction int

const (
	// ReductionExact records a word only when it differs from the
	// previous recorded word. It is the paper's default strategy and the
	// zero value, so an unset Reduction selects it.
	ReductionExact Reduction = iota
	// ReductionNone records every window's word.
	ReductionNone
	// ReductionMINDIST records a word only when its MINDIST to the
	// previous recorded word is non-zero, i.e. some letter pair is more
	// than one region apart. This is a looser filter than Exact.
	ReductionMINDIST
)

// String returns the GrammarViz-style name of the strategy.
func (r Reduction) String() string {
	switch r {
	case ReductionNone:
		return "NONE"
	case ReductionExact:
		return "EXACT"
	case ReductionMINDIST:
		return "MINDIST"
	default:
		return fmt.Sprintf("Reduction(%d)", int(r))
	}
}

// Word is one recorded SAX word together with the index of the window it
// was produced from (the word's offset into the original time series).
type Word struct {
	Str    string // the SAX letters
	Offset int    // start index of the source window in the time series
}

// Discretization is the result of sliding-window SAX discretization after
// numerosity reduction: an ordered sequence of words with their offsets.
type Discretization struct {
	Words     []Word // recorded words in time order
	SeriesLen int    // length of the source series
	Params    Params // parameters used
	Raw       int    // number of windows before numerosity reduction
}

// Discretize slides a window of p.Window over ts, SAX-encodes every
// window, and applies the numerosity-reduction strategy. The word order
// (and each word's offset) is preserved — the ordering is what makes
// grammar induction meaningful (Section 3.1).
func Discretize(ts []float64, p Params, red Reduction) (*Discretization, error) {
	if err := p.Validate(len(ts)); err != nil {
		return nil, err
	}
	enc, err := NewEncoder(p)
	if err != nil {
		return nil, err
	}
	d := &Discretization{SeriesLen: len(ts), Params: p}
	prev := ""
	for start := 0; start+p.Window <= len(ts); start++ {
		word, err := enc.Encode(ts[start : start+p.Window])
		if err != nil {
			return nil, err
		}
		d.Raw++
		switch red {
		case ReductionExact:
			if word == prev {
				continue
			}
		case ReductionMINDIST:
			if prev != "" && wordsMINDISTZero(word, prev) {
				continue
			}
		}
		d.Words = append(d.Words, Word{Str: word, Offset: start})
		prev = word
	}
	if len(d.Words) == 0 {
		return nil, fmt.Errorf("sax: discretization produced no words")
	}
	return d, nil
}

// wordsMINDISTZero reports whether MINDIST between two equal-length words
// is zero, i.e. every letter pair is at most one region apart.
func wordsMINDISTZero(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		d := int(a[i]) - int(b[i])
		if d < -1 || d > 1 {
			return false
		}
	}
	return true
}

// Strings returns just the word strings, in order. Useful as grammar
// induction input.
func (d *Discretization) Strings() []string {
	out := make([]string, len(d.Words))
	for i, w := range d.Words {
		out[i] = w.Str
	}
	return out
}

// Offsets returns each recorded word's offset into the source series.
func (d *Discretization) Offsets() []int {
	out := make([]int, len(d.Words))
	for i, w := range d.Words {
		out[i] = w.Offset
	}
	return out
}

// ReductionRatio returns the fraction of raw windows removed by numerosity
// reduction, in [0, 1).
func (d *Discretization) ReductionRatio() float64 {
	if d.Raw == 0 {
		return 0
	}
	return 1 - float64(len(d.Words))/float64(d.Raw)
}
