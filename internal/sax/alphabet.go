// Package sax implements Symbolic Aggregate approXimation (Lin, Keogh,
// Patel, Lonardi 2002/2003): a z-normalized time series is PAA-reduced and
// each segment mean is mapped to a letter via breakpoints that divide the
// standard normal distribution into equiprobable regions.
//
// The package also provides sliding-window discretization with the
// numerosity-reduction strategies used by GrammarViz, and the MINDIST
// lower-bounding distance between SAX words.
package sax

import (
	"errors"
	"fmt"
	"math"
)

// Alphabet size limits. Two letters is the smallest meaningful alphabet;
// the cap matches the reference implementation's practical range.
const (
	MinAlphabet = 2
	MaxAlphabet = 26
)

// ErrBadAlphabet is returned for alphabet sizes outside
// [MinAlphabet, MaxAlphabet].
var ErrBadAlphabet = errors.New("sax: alphabet size out of range")

// Breakpoints returns the a-1 cut points that divide the standard normal
// distribution into a equiprobable regions: the k-th cut is the k/a
// quantile of N(0,1). Segment means are mapped to letters by these cuts.
func Breakpoints(a int) ([]float64, error) {
	if a < MinAlphabet || a > MaxAlphabet {
		return nil, fmt.Errorf("%w: %d not in [%d,%d]", ErrBadAlphabet, a, MinAlphabet, MaxAlphabet)
	}
	cuts := make([]float64, a-1)
	for k := 1; k < a; k++ {
		p := float64(k) / float64(a)
		// Quantile of N(0,1): sqrt(2) * erfinv(2p-1).
		cuts[k-1] = math.Sqrt2 * math.Erfinv(2*p-1)
	}
	return cuts, nil
}

// Letter maps a single value to its alphabet index in [0, a-1] given the
// cut points from Breakpoints. Values on a cut map to the higher region,
// matching the reference implementation (cuts[i] <= v → letter > i).
func Letter(cuts []float64, v float64) byte {
	// Binary search: find the first cut strictly greater than v.
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if cuts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return byte(lo)
}

// IndexToChar converts an alphabet index to its letter rune ('a' + idx).
func IndexToChar(idx byte) byte { return 'a' + idx }

// CharToIndex converts a letter back to its alphabet index.
func CharToIndex(c byte) byte { return c - 'a' }
