package sax

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The incremental (prefix-sum) and parallel (chunk-stitched) discretizer
// must be byte-identical to the retained naive reference across data
// shapes x parameters x reductions x worker counts. These property tests
// are the contract that lets the rest of the pipeline switch to the fast
// path without re-validating anything downstream.

type eqSeries struct {
	name string
	ts   []float64
}

func equivalenceSeries(n int) []eqSeries {
	rng := rand.New(rand.NewSource(77))
	sine := make([]float64, n)
	walk := make([]float64, n)
	flat := make([]float64, n)
	spiky := make([]float64, n)
	offset := make([]float64, n)
	nearThresh := make([]float64, n)
	noise := make([]float64, n)
	level := 0.0
	for i := 0; i < n; i++ {
		sine[i] = math.Sin(2*math.Pi*float64(i)/60) + rng.NormFloat64()*0.05
		level += rng.NormFloat64() * 0.3
		walk[i] = level
		flat[i] = 0.125 // constant: every window takes the flat-guard path
		spiky[i] = 0.5
		if i%97 == 0 {
			spiky[i] = 5
		}
		// Large offset: mean >> std stresses the prefix-sum cancellation
		// guard, which should fall back rather than mis-letter.
		offset[i] = 1e6 + math.Sin(float64(i)/9)*0.5
		// Window std hovers around the 0.01 flat threshold: the ambiguous
		// flat decision must match the naive encoder on every window.
		nearThresh[i] = rng.NormFloat64() * 0.01
		noise[i] = rng.NormFloat64() * 3
	}
	return []eqSeries{
		{"sine", sine},
		{"walk", walk},
		{"flat", flat},
		{"spiky", spiky},
		{"offset1e6", offset},
		{"nearthresh", nearThresh},
		{"noise", noise},
	}
}

var equivalenceParams = []Params{
	{Window: 40, PAA: 4, Alphabet: 4},
	{Window: 50, PAA: 7, Alphabet: 5}, // non-divisible: fractional PAA segments
	{Window: 13, PAA: 13, Alphabet: 3},
	{Window: 100, PAA: 9, Alphabet: 26},
	{Window: 7, PAA: 3, Alphabet: 2},
}

func assertSameDiscretization(t *testing.T, want, got *Discretization) {
	t.Helper()
	if got.Raw != want.Raw {
		t.Fatalf("Raw = %d, want %d", got.Raw, want.Raw)
	}
	if len(got.Words) != len(want.Words) {
		t.Fatalf("words = %d, want %d", len(got.Words), len(want.Words))
	}
	for i := range want.Words {
		if got.Words[i] != want.Words[i] {
			t.Fatalf("word[%d] = %+v, want %+v", i, got.Words[i], want.Words[i])
		}
	}
}

func TestDiscretizeMatchesReference(t *testing.T) {
	const n = 3000
	for _, s := range equivalenceSeries(n) {
		for _, p := range equivalenceParams {
			for _, red := range []Reduction{ReductionExact, ReductionNone, ReductionMINDIST} {
				t.Run(fmt.Sprintf("%s/%s/%s", s.name, p, red), func(t *testing.T) {
					want, err := DiscretizeReference(s.ts, p, red)
					if err != nil {
						t.Fatalf("reference: %v", err)
					}
					for _, workers := range []int{1, 2, 3, 4, 7} {
						got, err := DiscretizeWorkers(s.ts, p, red, workers)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						assertSameDiscretization(t, want, got)
					}
				})
			}
		}
	}
}

// The fast path must actually be fast: on well-conditioned data the
// guarded fallback should fire on a negligible fraction of windows.
func TestIncrementalFallbackIsRare(t *testing.T) {
	const n = 3000
	for _, s := range equivalenceSeries(n) {
		if s.name == "offset1e6" || s.name == "nearthresh" {
			continue // ill-conditioned by construction; only correctness matters there
		}
		d, err := Discretize(s.ts, Params{Window: 40, PAA: 4, Alphabet: 4}, ReductionExact)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if d.Fallbacks > d.Raw/10 {
			t.Errorf("%s: %d/%d windows fell back to the naive encoder", s.name, d.Fallbacks, d.Raw)
		}
	}
}

// Workers <= 0 selects all cores and must still be byte-identical.
func TestDiscretizeWorkersAuto(t *testing.T) {
	series := equivalenceSeries(3000)[0]
	p := Params{Window: 40, PAA: 4, Alphabet: 4}
	want, err := DiscretizeReference(series.ts, p, ReductionExact)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DiscretizeWorkers(series.ts, p, ReductionExact, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDiscretization(t, want, got)
}

// A seeded fuzz over random parameter combinations on rough data, as a
// backstop for the hand-picked grids above.
func TestDiscretizeMatchesReferenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 600 + rng.Intn(2500)
		ts := make([]float64, n)
		level := 0.0
		for i := range ts {
			level += rng.NormFloat64() * 0.2
			ts[i] = level + math.Sin(float64(i)/7)*rng.Float64()
		}
		window := 8 + rng.Intn(200)
		if window > n {
			window = n
		}
		p := Params{
			Window:   window,
			PAA:      1 + rng.Intn(window),
			Alphabet: 2 + rng.Intn(25),
		}
		red := []Reduction{ReductionExact, ReductionNone, ReductionMINDIST}[rng.Intn(3)]
		workers := 1 + rng.Intn(8)
		want, err := DiscretizeReference(ts, p, red)
		if err != nil {
			t.Fatalf("trial %d %s: reference: %v", trial, p, err)
		}
		got, err := DiscretizeWorkers(ts, p, red, workers)
		if err != nil {
			t.Fatalf("trial %d %s workers=%d: %v", trial, p, workers, err)
		}
		assertSameDiscretization(t, want, got)
	}
}
