package sax

import (
	"fmt"
	"math"
)

// DistTable holds the pairwise letter distance matrix used by MINDIST: the
// distance between letters r and c is 0 when |r-c| <= 1, otherwise the gap
// between the breakpoints separating them (Lin et al. 2003).
type DistTable struct {
	a     int
	table [][]float64
}

// NewDistTable builds the letter distance table for alphabet size a.
func NewDistTable(a int) (*DistTable, error) {
	cuts, err := Breakpoints(a)
	if err != nil {
		return nil, err
	}
	t := make([][]float64, a)
	for r := 0; r < a; r++ {
		t[r] = make([]float64, a)
		for c := 0; c < a; c++ {
			if abs := r - c; abs > 1 || abs < -1 {
				hi, lo := r, c
				if c > r {
					hi, lo = c, r
				}
				t[r][c] = cuts[hi-1] - cuts[lo]
			}
		}
	}
	return &DistTable{a: a, table: t}, nil
}

// LetterDist returns the distance between two alphabet indices.
func (dt *DistTable) LetterDist(r, c byte) float64 { return dt.table[r][c] }

// MINDIST returns the lower-bounding distance between two SAX words of the
// same length, scaled for original subsequence length n:
//
//	MINDIST = sqrt(n/w) * sqrt(sum_i dist(a_i, b_i)^2)
//
// MINDIST lower-bounds the Euclidean distance between the z-normalized
// source subsequences — the property that makes SAX admissible for pruning.
func (dt *DistTable) MINDIST(a, b string, n int) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("sax: MINDIST needs equal non-empty words, got %q %q", a, b)
	}
	var sum float64
	for i := 0; i < len(a); i++ {
		ia, ib := CharToIndex(a[i]), CharToIndex(b[i])
		if int(ia) >= dt.a || int(ib) >= dt.a {
			return 0, fmt.Errorf("sax: word letter outside alphabet %d: %q %q", dt.a, a, b)
		}
		d := dt.table[ia][ib]
		sum += d * d
	}
	return math.Sqrt(float64(n)/float64(len(a))) * math.Sqrt(sum), nil
}
