package sax

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		n    int
		ok   bool
	}{
		{"valid", Params{Window: 100, PAA: 4, Alphabet: 4}, 1000, true},
		{"window too big", Params{Window: 100, PAA: 4, Alphabet: 4}, 50, false},
		{"window zero", Params{Window: 0, PAA: 4, Alphabet: 4}, 50, false},
		{"paa exceeds window", Params{Window: 3, PAA: 4, Alphabet: 4}, 50, false},
		{"paa zero", Params{Window: 10, PAA: 0, Alphabet: 4}, 50, false},
		{"alphabet too small", Params{Window: 10, PAA: 4, Alphabet: 1}, 50, false},
		{"alphabet too big", Params{Window: 10, PAA: 4, Alphabet: 30}, 50, false},
		{"window equals n", Params{Window: 50, PAA: 4, Alphabet: 4}, 50, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate(tt.n)
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestParamsString(t *testing.T) {
	p := Params{Window: 120, PAA: 4, Alphabet: 4}
	if got := p.String(); got != "(120,4,4)" {
		t.Errorf("String = %q", got)
	}
}

func TestEncodeShapes(t *testing.T) {
	p := Params{Window: 8, PAA: 4, Alphabet: 4}
	tests := []struct {
		name string
		in   []float64
		want string
	}{
		// Rising ramp: low letters then high letters.
		{"ramp up", []float64{0, 1, 2, 3, 4, 5, 6, 7}, "abcd"},
		{"ramp down", []float64{7, 6, 5, 4, 3, 2, 1, 0}, "dcba"},
		// Constant maps to the flat middle. With the near-flat guard the
		// z-normed values are all 0, letter index 2 for a=4 ('c').
		{"flat", []float64{3, 3, 3, 3, 3, 3, 3, 3}, "cccc"},
		// V shape.
		{"vee", []float64{4, 3, 1, 0, 0, 1, 3, 4}, "daad"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Encode(tt.in, p)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if got != tt.want {
				t.Errorf("Encode(%v) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestEncodeInvariantToScaleAndShift(t *testing.T) {
	p := Params{Window: 16, PAA: 4, Alphabet: 5}
	rng := rand.New(rand.NewSource(3))
	base := make([]float64, 16)
	for i := range base {
		base[i] = math.Sin(float64(i)/3) + rng.NormFloat64()*0.1
	}
	want, err := Encode(base, p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	scaled := make([]float64, len(base))
	for i, v := range base {
		scaled[i] = v*250 - 17
	}
	got, err := Encode(scaled, p)
	if err != nil {
		t.Fatalf("Encode scaled: %v", err)
	}
	if got != want {
		t.Errorf("SAX not scale/shift invariant: %q vs %q", got, want)
	}
}

func TestEncodeVariableLength(t *testing.T) {
	// RRA encodes rule-corresponding subsequences of arbitrary length with
	// the same encoder.
	p := Params{Window: 100, PAA: 4, Alphabet: 4}
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	for _, n := range []int{4, 7, 50, 333} {
		sub := make([]float64, n)
		for i := range sub {
			sub[i] = float64(i)
		}
		w, err := enc.Encode(sub)
		if err != nil {
			t.Fatalf("Encode len %d: %v", n, err)
		}
		if len(w) != 4 {
			t.Errorf("word length = %d, want 4", len(w))
		}
		if w != "abcd" {
			t.Errorf("rising ramp of len %d = %q, want abcd", n, w)
		}
	}
	if _, err := enc.Encode([]float64{1, 2, 3}); err == nil {
		t.Error("subsequence shorter than PAA must error")
	}
}

func TestNewEncoderErrors(t *testing.T) {
	if _, err := NewEncoder(Params{PAA: 0, Alphabet: 4}); err == nil {
		t.Error("PAA 0 should error")
	}
	if _, err := NewEncoder(Params{PAA: 4, Alphabet: 1}); err == nil {
		t.Error("alphabet 1 should error")
	}
}

func TestEncodeWordAlphabetBounds(t *testing.T) {
	// All letters must be within the alphabet for many random inputs.
	rng := rand.New(rand.NewSource(5))
	p := Params{Window: 32, PAA: 8, Alphabet: 3}
	enc, _ := NewEncoder(p)
	for trial := 0; trial < 200; trial++ {
		sub := make([]float64, 32)
		for i := range sub {
			sub[i] = rng.NormFloat64() * 100
		}
		w, err := enc.Encode(sub)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if strings.IndexFunc(w, func(r rune) bool { return r < 'a' || r > 'c' }) >= 0 {
			t.Fatalf("word %q outside alphabet of size 3", w)
		}
	}
}
