package sax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Encoder determinism: the same subsequence always yields the same word,
// including after the encoder's buffers have been reused for other sizes.
func TestEncoderDeterministicAcrossReuse(t *testing.T) {
	enc, err := NewEncoder(Params{Window: 64, PAA: 6, Alphabet: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	sub := make([]float64, 64)
	for i := range sub {
		sub[i] = rng.NormFloat64()
	}
	first, err := enc.Encode(sub)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave encodes of other lengths to churn the scratch buffers.
	other := make([]float64, 200)
	for i := range other {
		other[i] = rng.NormFloat64()
	}
	if _, err := enc.Encode(other); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(other[:10]); err != nil {
		t.Fatal(err)
	}
	again, err := enc.Encode(sub)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("encoder not deterministic: %q vs %q", first, again)
	}
}

// MINDIST is symmetric and satisfies the identity property.
func TestMINDISTSymmetry(t *testing.T) {
	dt, err := NewDistTable(6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	word := func() string {
		b := make([]byte, 5)
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return string(b)
	}
	for trial := 0; trial < 300; trial++ {
		a, b := word(), word()
		dab, err := dt.MINDIST(a, b, 50)
		if err != nil {
			t.Fatal(err)
		}
		dba, err := dt.MINDIST(b, a, 50)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dab-dba) > 1e-12 {
			t.Fatalf("MINDIST asymmetric for %q %q", a, b)
		}
		daa, _ := dt.MINDIST(a, a, 50)
		if daa != 0 {
			t.Fatalf("MINDIST(%q,%q) = %v", a, a, daa)
		}
		if dab < 0 {
			t.Fatalf("negative MINDIST %v", dab)
		}
	}
}

// MINDIST scales with sqrt(n/w): doubling the original length must scale
// the distance by sqrt(2).
func TestMINDISTLengthScaling(t *testing.T) {
	dt, _ := NewDistTable(4)
	d1, err := dt.MINDIST("ad", "da", 100)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := dt.MINDIST("ad", "da", 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2/d1-math.Sqrt2) > 1e-12 {
		t.Errorf("scaling d2/d1 = %v, want sqrt(2)", d2/d1)
	}
}

// Discretization offsets always identify the window that produced the
// word: re-encoding the window at each recorded offset reproduces the
// recorded word.
func TestDiscretizeOffsetsReproduceWords(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ts := make([]float64, 600)
	for i := range ts {
		ts[i] = math.Sin(float64(i)/9) + rng.NormFloat64()*0.05
	}
	p := Params{Window: 48, PAA: 6, Alphabet: 4}
	for _, red := range []Reduction{ReductionNone, ReductionExact, ReductionMINDIST} {
		d, err := Discretize(ts, p, red)
		if err != nil {
			t.Fatalf("%v: %v", red, err)
		}
		enc, _ := NewEncoder(p)
		for _, w := range d.Words {
			got, err := enc.Encode(ts[w.Offset : w.Offset+p.Window])
			if err != nil {
				t.Fatal(err)
			}
			if got != w.Str {
				t.Fatalf("%v: word at %d is %q, re-encoding gives %q", red, w.Offset, w.Str, got)
			}
		}
	}
}

// Property: for any series, ReductionNone records exactly n-window+1
// words and reduction strategies record a subsequence of them.
func TestReductionSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := local.Intn(300) + 60
		ts := make([]float64, n)
		for i := range ts {
			ts[i] = math.Sin(float64(i)/5) + local.NormFloat64()*0.2
		}
		p := Params{Window: 30, PAA: 4, Alphabet: 4}
		all, err := Discretize(ts, p, ReductionNone)
		if err != nil {
			return false
		}
		if len(all.Words) != n-30+1 {
			return false
		}
		byOffset := make(map[int]string, len(all.Words))
		for _, w := range all.Words {
			byOffset[w.Offset] = w.Str
		}
		exact, err := Discretize(ts, p, ReductionExact)
		if err != nil {
			return false
		}
		for _, w := range exact.Words {
			if byOffset[w.Offset] != w.Str {
				return false // reduced words must be a subset
			}
		}
		return len(exact.Words) <= len(all.Words)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
