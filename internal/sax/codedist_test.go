package sax

import (
	"errors"
	"math/rand"
	"testing"
)

// TestMINDISTCodeMatchesString: the coded evaluator returns bit-identical
// results to the string-path MINDIST — same table values, same squaring,
// same accumulation order, same scaling — across alphabets, word lengths
// and subsequence lengths.
func TestMINDISTCodeMatchesString(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, alphabet := range []int{2, 3, 4, 6, 8, 16, 26} {
		for _, paa := range []int{2, 4, 7, 12} {
			codec := NewWordCodec(paa, alphabet)
			if !codec.Fits() {
				continue
			}
			dt, err := NewDistTable(alphabet)
			if err != nil {
				t.Fatal(err)
			}
			cd, err := NewCodeDist(dt, codec)
			if err != nil {
				t.Fatalf("NewCodeDist(a=%d, paa=%d): %v", alphabet, paa, err)
			}
			for trial := 0; trial < 200; trial++ {
				wa, wb := randWord(rng, paa, alphabet), randWord(rng, paa, alphabet)
				n := paa + rng.Intn(500)
				want, err := dt.MINDIST(wa, wb, n)
				if err != nil {
					t.Fatal(err)
				}
				got := cd.MINDISTCode(codec.PackString(wa), codec.PackString(wb), n)
				if got != want {
					t.Fatalf("a=%d paa=%d n=%d words %q %q: MINDISTCode = %v, MINDIST = %v",
						alphabet, paa, n, wa, wb, got, want)
				}
			}
		}
	}
}

// TestMINDISTCodeAllocs pins the zero-allocation contract declared by the
// //gvad:noalloc directive.
func TestMINDISTCodeAllocs(t *testing.T) {
	codec := NewWordCodec(8, 6)
	dt, err := NewDistTable(6)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := NewCodeDist(dt, codec)
	if err != nil {
		t.Fatal(err)
	}
	a := codec.PackString("abcfedfa")
	b := codec.PackString("ffaacbde")
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += cd.MINDISTCode(a, b, 128)
	})
	if allocs != 0 {
		t.Errorf("MINDISTCode allocates %v times per call, want 0", allocs)
	}
	_ = sink
}

// TestNewCodeDistErrors: construction rejects codecs that cannot carry
// the table's alphabet.
func TestNewCodeDistErrors(t *testing.T) {
	dt26, err := NewDistTable(26)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCodeDist(dt26, NewWordCodec(40, 26)); !errors.Is(err, ErrCodeOverflow) {
		t.Errorf("non-fitting codec: err = %v, want ErrCodeOverflow", err)
	}
	dt5, err := NewDistTable(5)
	if err != nil {
		t.Fatal(err)
	}
	// A 4-letter codec has 2-bit letters; alphabet 5 does not fit.
	if _, err := NewCodeDist(dt5, NewWordCodec(8, 4)); err == nil {
		t.Error("alphabet wider than the codec's letters was accepted")
	}
}
