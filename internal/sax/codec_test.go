package sax

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// randWord returns a random word of length paa over the first `alphabet`
// letters.
func randWord(rng *rand.Rand, paa, alphabet int) string {
	var b strings.Builder
	for i := 0; i < paa; i++ {
		b.WriteByte(byte('a' + rng.Intn(alphabet)))
	}
	return b.String()
}

func TestWordCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ paa, alphabet int }{
		{1, 2}, {3, 3}, {4, 4}, {8, 4}, {12, 26}, {16, 10}, {32, 4}, {21, 8},
	} {
		c := NewWordCodec(tc.paa, tc.alphabet)
		if !c.Fits() {
			t.Fatalf("paa=%d alphabet=%d should fit", tc.paa, tc.alphabet)
		}
		for i := 0; i < 200; i++ {
			w := randWord(rng, tc.paa, tc.alphabet)
			code := c.PackString(w)
			if got := c.Decode(code); got != w {
				t.Fatalf("paa=%d a=%d: %q -> %d -> %q", tc.paa, tc.alphabet, w, code, got)
			}
			if c.Pack([]byte(w)) != code {
				t.Fatalf("Pack and PackString disagree on %q", w)
			}
		}
	}
}

func TestWordCodecInjective(t *testing.T) {
	// Exhaustive over a small parameter shape: every distinct word must get
	// a distinct code.
	c := NewWordCodec(3, 4)
	seen := make(map[uint64]string)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for d := 0; d < 4; d++ {
				w := string([]byte{byte('a' + a), byte('a' + b), byte('a' + d)})
				code := c.PackString(w)
				if prev, dup := seen[code]; dup {
					t.Fatalf("code %d for both %q and %q", code, prev, w)
				}
				seen[code] = w
			}
		}
	}
}

func TestWordCodecFitsBoundary(t *testing.T) {
	// 32 letters at alphabet 4 use exactly 64 bits; 33 overflow.
	if !NewWordCodec(32, 4).Fits() {
		t.Error("paa=32 alphabet=4 should fit (2 bits/letter)")
	}
	if NewWordCodec(33, 4).Fits() {
		t.Error("paa=33 alphabet=4 should not fit")
	}
	if NewWordCodec(13, 26).Fits() {
		t.Error("paa=13 alphabet=26 should not fit (5 bits/letter)")
	}
	if NewWordCodec(0, 4).Fits() || NewWordCodec(4, 1).Fits() {
		t.Error("degenerate parameters should not fit")
	}
}

func TestWordCodecMINDISTZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewWordCodec(5, 6)
	for i := 0; i < 500; i++ {
		a := randWord(rng, 5, 6)
		b := randWord(rng, 5, 6)
		want := wordsMINDISTZero(a, b)
		got := c.MINDISTZero(c.PackString(a), c.PackString(b))
		if got != want {
			t.Fatalf("MINDISTZero(%q, %q): code %v, string %v", a, b, got, want)
		}
	}
}

func TestEncodeCodeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Params{Window: 32, PAA: 4, Alphabet: 4}
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	sub := make([]float64, p.Window)
	for i := 0; i < 100; i++ {
		for j := range sub {
			sub[j] = rng.NormFloat64()
		}
		word, err := enc.Encode(sub)
		if err != nil {
			t.Fatal(err)
		}
		code, err := enc.EncodeCode(sub)
		if err != nil {
			t.Fatal(err)
		}
		if got := enc.Codec().Decode(code); got != word {
			t.Fatalf("window %d: Encode %q, EncodeCode decodes to %q", i, word, got)
		}
	}
}

func TestEncodeCodeOverflow(t *testing.T) {
	// paa=40 at alphabet 4 needs 80 bits: EncodeCode must refuse.
	enc, err := NewEncoder(Params{Window: 80, PAA: 40, Alphabet: 4})
	if err != nil {
		t.Fatal(err)
	}
	sub := make([]float64, 80)
	for i := range sub {
		sub[i] = float64(i % 7)
	}
	if _, err := enc.EncodeCode(sub); !errors.Is(err, ErrCodeOverflow) {
		t.Fatalf("want ErrCodeOverflow, got %v", err)
	}
	// The string path still works for the same encoder.
	if _, err := enc.Encode(sub); err != nil {
		t.Fatalf("Encode should still work: %v", err)
	}
}

// TestEncodeCodeAllocs pins the zero-allocation guarantee of the coded hot
// path: after the first call warms the scratch buffer, EncodeCode must not
// allocate.
func TestEncodeCodeAllocs(t *testing.T) {
	enc, err := NewEncoder(Params{Window: 64, PAA: 8, Alphabet: 6})
	if err != nil {
		t.Fatal(err)
	}
	sub := make([]float64, 64)
	for i := range sub {
		sub[i] = float64(i%13) - 6
	}
	if _, err := enc.EncodeCode(sub); err != nil { // warm the word scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := enc.EncodeCode(sub); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeCode allocates %v objects per call in steady state, want 0", allocs)
	}
}
