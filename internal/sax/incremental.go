package sax

import (
	"math"

	"grammarviz/internal/paa"
)

// This file implements the incremental sliding-window SAX encoder: instead
// of z-normalizing and PAA-reducing every window from scratch (O(window)
// per window), it derives each window's mean/std and raw PAA segment sums
// from series-level prefix sums (O(paa) per window). The z-normalize-then-
// PAA pipeline is affine in the raw values, so
//
//	PAA(znorm(x))[k] = (PAA(x)[k] - mean(x)) / std(x)
//
// in real arithmetic, which lets the whole per-window computation run on
// prefix-sum differences.
//
// Floating point breaks real-arithmetic identities, so the encoder is
// guarded: it tracks conservative error bounds for every derived quantity
// and falls back to the naive per-window encoder whenever a SAX letter
// decision (distance of a segment value to an alphabet breakpoint) or the
// flat-window guard (distance of the variance to threshold^2) is within
// the bound. The output is therefore byte-identical to DiscretizeReference
// for every input; the fallback only costs speed, and triggers only on
// windows whose letters are genuinely on a knife's edge.

// errScale converts a tracked magnitude into a conservative absolute error
// bound. Kahan-compensated prefix sums keep per-entry error within a few
// ulps (~1e-15 relative); 1e-11 leaves four orders of magnitude of margin
// for the downstream arithmetic on both the incremental and naive sides.
const errScale = 1e-11

// slidingStats holds the immutable per-series precomputation shared by all
// workers of a sliding discretization: compensated prefix sums, the PAA
// segment pattern, the alphabet breakpoints, and error-bound magnitudes.
type slidingStats struct {
	ts      []float64
	p       Params
	cuts    []float64
	pat     *paa.SegmentPattern
	sum     []float64 // Kahan prefix sums: sum[i] = ts[0]+...+ts[i-1]
	sumSq   []float64
	changes []int32 // prefix count of ts[i] != ts[i-1] (constant-window test)
	thresh  float64 // flat-window std threshold
	thresh2 float64

	meanErr    float64 // bound on |incremental mean - naive mean|
	segMeanErr float64 // bound on a raw PAA segment mean's error
	sumSqErr   float64 // bound on the window's mean-square error

	// forceNaive disables the incremental path entirely: the prefix sums
	// (or their squares) overflowed to Inf, so no error bound is
	// trustworthy. Every window then takes the naive encoder, which keeps
	// the output byte-identical to DiscretizeReference by construction.
	forceNaive bool
}

// kahanPrefix builds a compensated prefix-sum array of f(v) over ts and
// returns it with the maximum absolute prefix value (the error magnitude).
func kahanPrefix(ts []float64, f func(float64) float64) (out []float64, maxAbs float64) {
	out = make([]float64, len(ts)+1)
	var s, c float64
	for i, v := range ts {
		y := f(v) - c
		t := s + y
		c = (t - s) - y
		s = t
		out[i+1] = s
		if a := math.Abs(s); a > maxAbs {
			maxAbs = a
		}
	}
	return out, maxAbs
}

func newSlidingStats(ts []float64, p Params) (*slidingStats, error) {
	cuts, err := Breakpoints(p.Alphabet)
	if err != nil {
		return nil, err
	}
	pat, err := paa.NewSegmentPattern(p.Window, p.PAA)
	if err != nil {
		return nil, err
	}
	st := &slidingStats{
		ts:      ts,
		p:       p,
		cuts:    cuts,
		pat:     pat,
		thresh:  p.normThreshold(),
		thresh2: p.normThreshold() * p.normThreshold(),
	}
	var magP, magQ float64
	st.sum, magP = kahanPrefix(ts, func(v float64) float64 { return v })
	st.sumSq, magQ = kahanPrefix(ts, func(v float64) float64 { return v * v })
	st.changes = make([]int32, len(ts)+1)
	for i := 1; i < len(ts); i++ {
		st.changes[i+1] = st.changes[i]
		if ts[i] != ts[i-1] {
			st.changes[i+1]++
		}
	}
	w := float64(p.Window)
	st.meanErr = errScale * (magP/w + 1)
	st.sumSqErr = errScale * (magQ/w + 1)
	st.segMeanErr = errScale * (magP*pat.Inv + 1)
	// Values above ~1.3e154 overflow the squared prefix sums even though
	// the series itself is finite; past that point the incremental
	// arithmetic (and its error tracking) is meaningless.
	st.forceNaive = math.IsInf(magP, 0) || math.IsInf(magQ, 0)
	return st, nil
}

// windowEncoder is one worker's mutable view of a slidingStats: a reusable
// word buffer plus the naive fallback encoder. Not safe for concurrent
// use; create one per goroutine.
type windowEncoder struct {
	st        *slidingStats
	buf       []byte
	naive     *Encoder
	flatCache map[uint64][]byte // constant-window value bits -> naive word
	fallbacks int               // windows that took the naive path (observability/tests)
}

func (st *slidingStats) newWindowEncoder() (*windowEncoder, error) {
	naive, err := NewEncoder(st.p)
	if err != nil {
		return nil, err
	}
	return &windowEncoder{st: st, buf: make([]byte, st.p.PAA), naive: naive}, nil
}

// encode writes the SAX word of the window starting at start into the
// reusable buffer and returns it. The buffer is valid until the next call.
func (we *windowEncoder) encode(start int) ([]byte, error) {
	st := we.st
	w := st.p.Window
	// Bitwise-constant windows land exactly on the central breakpoint, so
	// the incremental guard would punt every one of them to the naive
	// encoder — an O(window) cost on flat-heavy data (telemetry, spiky
	// series). Their naive word depends only on the constant's value, so
	// encode it once per distinct value and serve repeats from a cache.
	if st.changes[start+w] == st.changes[start+1] {
		bits := math.Float64bits(st.ts[start])
		if word, ok := we.flatCache[bits]; ok {
			copy(we.buf, word)
			return we.buf, nil
		}
		if err := we.naive.EncodeInto(we.buf, st.ts[start:start+w]); err != nil {
			return nil, err
		}
		if we.flatCache == nil {
			we.flatCache = make(map[uint64][]byte)
		}
		we.flatCache[bits] = append([]byte(nil), we.buf...)
		return we.buf, nil
	}
	if !we.tryIncremental(start) {
		we.fallbacks++
		if err := we.naive.EncodeInto(we.buf, st.ts[start:start+w]); err != nil {
			return nil, err
		}
	}
	return we.buf, nil
}

// tryIncremental attempts the prefix-sum encoding of one window. It
// reports false — leaving the buffer unspecified — when any letter or the
// flat-window decision falls within the tracked error bound of a boundary,
// in which case the caller must take the naive path.
func (we *windowEncoder) tryIncremental(start int) bool {
	st := we.st
	if st.forceNaive {
		return false
	}
	w := st.p.Window
	n := float64(w)
	sum := st.sum[start+w] - st.sum[start]
	sumSq := st.sumSq[start+w] - st.sumSq[start]
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	absMean := math.Abs(mean)
	varErr := st.sumSqErr + 2*absMean*st.meanErr + st.meanErr*st.meanErr
	if math.Abs(variance-st.thresh2) <= 4*varErr {
		return false // ambiguous flat-window decision
	}
	s := 1.0 // flat windows are centered, not scaled (ZNormalizeInto)
	var sErr float64
	if variance > st.thresh2 {
		std := math.Sqrt(variance)
		s = 1 / std
		sErr = s * s * (varErr / (2 * std))
	}
	valErr := (st.segMeanErr + st.meanErr) * s
	ts := st.ts
	for k := range st.pat.Segs {
		seg := &st.pat.Segs[k]
		raw := st.sum[start+seg.Hi] - st.sum[start+seg.Lo]
		if seg.FracIdx[0] >= 0 {
			raw += ts[start+seg.FracIdx[0]] * seg.FracW[0]
		}
		if seg.FracIdx[1] >= 0 {
			raw += ts[start+seg.FracIdx[1]] * seg.FracW[1]
		}
		segMean := raw * st.pat.Inv
		v := (segMean - mean) * s
		vErr := 4*(valErr+math.Abs(segMean-mean)*sErr) + 1e-12
		letter := Letter(st.cuts, v)
		if letter > 0 && v-st.cuts[letter-1] <= vErr {
			return false // too close to the breakpoint below
		}
		if int(letter) < len(st.cuts) && st.cuts[letter]-v <= vErr {
			return false // too close to the breakpoint above
		}
		we.buf[k] = IndexToChar(letter)
	}
	return true
}
