package sax

import (
	"errors"
	"math/bits"
)

// ErrCodeOverflow is returned when a SAX word cannot be packed into a
// uint64 code because paa * ceil(log2(alphabet)) exceeds 64 bits.
var ErrCodeOverflow = errors.New("sax: word does not fit a uint64 code")

// WordCodec packs SAX words into uint64 codes so the grammar-induction hot
// path can hash and compare integers instead of allocating and re-hashing
// strings. Each letter takes ceil(log2(alphabet)) bits, first letter in
// the most significant position, so codes of equal-length words compare
// and hash like the words themselves (bijective with the string form).
//
// A word of w letters over alphabet a fits whenever w*ceil(log2(a)) <= 64
// — e.g. 32 letters at a=4, 21 at a=8, 12 at the a=26 maximum — which
// covers every parameter choice the paper sweeps. Callers must check
// Fits() and keep to the string path otherwise.
type WordCodec struct {
	paa  int
	bits uint
	mask uint64
	ok   bool
}

// NewWordCodec returns the codec for words of paa letters over the given
// alphabet. The zero codec (and any codec whose parameters do not fit 64
// bits) reports Fits() == false.
func NewWordCodec(paa, alphabet int) WordCodec {
	if paa <= 0 || alphabet < MinAlphabet || alphabet > MaxAlphabet {
		return WordCodec{}
	}
	b := uint(bits.Len(uint(alphabet - 1)))
	if uint(paa)*b > 64 {
		return WordCodec{}
	}
	return WordCodec{paa: paa, bits: b, mask: 1<<b - 1, ok: true}
}

// Fits reports whether words of this codec's shape pack into a uint64.
func (c WordCodec) Fits() bool { return c.ok }

// PAA returns the word length the codec packs.
func (c WordCodec) PAA() int { return c.paa }

// Pack packs a word of exactly c.PAA() letter bytes ('a'...) into its
// code. It does not allocate. Words produced by Encoder/windowEncoder are
// always well-formed; Pack does not re-validate letters.
func (c WordCodec) Pack(word []byte) uint64 {
	var code uint64
	for _, ch := range word {
		code = code<<c.bits | uint64(ch-'a')&c.mask
	}
	return code
}

// PackString is Pack for a string-form word.
func (c WordCodec) PackString(word string) uint64 {
	var code uint64
	for i := 0; i < len(word); i++ {
		code = code<<c.bits | uint64(word[i]-'a')&c.mask
	}
	return code
}

// AppendDecode appends the word's letters to dst and returns the extended
// slice — the allocation-controlled inverse of Pack.
func (c WordCodec) AppendDecode(dst []byte, code uint64) []byte {
	for k := c.paa - 1; k >= 0; k-- {
		dst = append(dst, byte('a'+(code>>(uint(k)*c.bits))&c.mask))
	}
	return dst
}

// Decode renders a code back into its string form. Strings are built only
// at the API/debug boundary; the pipeline passes codes.
func (c WordCodec) Decode(code uint64) string {
	buf := make([]byte, 0, c.paa)
	return string(c.AppendDecode(buf, code))
}

// MINDISTZero reports whether MINDIST between two word codes is zero,
// i.e. every letter pair is at most one region apart — the coded
// equivalent of wordsMINDISTZero.
func (c WordCodec) MINDISTZero(a, b uint64) bool {
	for k := 0; k < c.paa; k++ {
		sh := uint(k) * c.bits
		d := int(a>>sh&c.mask) - int(b>>sh&c.mask)
		if d < -1 || d > 1 {
			return false
		}
	}
	return true
}

// EncodeCode discretizes one subsequence directly into its packed word
// code. It allocates nothing in steady state, which makes it the preferred
// encoder for hot loops: the runtime pin is TestEncodeCodeAllocs
// (testing.AllocsPerRun == 0) and the static guarantee is gvadlint's
// noalloc pass via the directive below — the word buffer and the overflow
// error are both built once in NewEncoder, never per call. It fails with
// ErrCodeOverflow when the encoder's parameters do not fit a uint64 code.
//
//gvad:noalloc
func (e *Encoder) EncodeCode(sub []float64) (uint64, error) {
	if !e.codec.Fits() {
		return 0, e.overflowErr
	}
	if err := e.EncodeInto(e.word, sub); err != nil {
		return 0, err
	}
	return e.codec.Pack(e.word), nil
}

// Codec returns the encoder's word codec (Fits() == false when the
// parameters exceed 64 bits).
func (e *Encoder) Codec() WordCodec { return e.codec }
