package sax

import (
	"fmt"
	"math"
)

// CodeDist computes MINDIST directly over packed uint64 word codes,
// skipping the string decode the DistTable path needs. The discord
// search's distance pruning calls MINDIST against every candidate's SAX
// word; on the coded hot path the words already live as uint64 codes, so
// decoding them to strings per comparison would allocate and re-validate
// work the encoder did once. CodeDist precomputes the squared letter
// distances into a flat table indexed by the concatenated letter-pair
// bits, so one comparison is w table lookups and a square root — no
// strings, no bounds re-checks, no allocation.
//
// The result is numerically identical to DistTable.MINDIST on the
// corresponding words: the table stores the same letter distances
// squared with the same float64 operations, accumulated in the same
// most-significant-letter-first order.
type CodeDist struct {
	codec WordCodec
	// sq[ra<<bits|rb] is LetterDist(ra, rb)² for letter indices below the
	// alphabet; out-of-alphabet patterns (unreachable from well-formed
	// codes) stay zero.
	sq []float64
}

// NewCodeDist builds the coded MINDIST evaluator for dt's alphabet and
// the given codec. It fails when the codec cannot represent words
// (Fits() == false) or when the codec's letter width cannot hold the
// alphabet.
func NewCodeDist(dt *DistTable, codec WordCodec) (*CodeDist, error) {
	if !codec.Fits() {
		return nil, ErrCodeOverflow
	}
	if dt.a > 1<<codec.bits {
		return nil, fmt.Errorf("sax: alphabet %d exceeds codec letter width %d bits", dt.a, codec.bits)
	}
	sq := make([]float64, 1<<(2*codec.bits))
	for ra := 0; ra < dt.a; ra++ {
		for rb := 0; rb < dt.a; rb++ {
			d := dt.table[ra][rb]
			sq[uint64(ra)<<codec.bits|uint64(rb)] = d * d
		}
	}
	return &CodeDist{codec: codec, sq: sq}, nil
}

// MINDISTCode returns the lower-bounding distance between two packed SAX
// word codes, scaled for original subsequence length n — the coded
// equivalent of DistTable.MINDIST. Both codes must come from this
// evaluator's codec; like WordCodec.Pack, it does not re-validate. It
// allocates nothing: the runtime pin is TestMINDISTCodeAllocs and the
// static guarantee is gvadlint's noalloc pass via the directive below.
//
//gvad:noalloc
func (d *CodeDist) MINDISTCode(a, b uint64, n int) float64 {
	var sum float64
	// Most-significant letter first, matching the string MINDIST's
	// left-to-right accumulation so the floating-point sum is identical.
	for k := d.codec.paa - 1; k >= 0; k-- {
		sh := uint(k) * d.codec.bits
		sum += d.sq[(a>>sh&d.codec.mask)<<d.codec.bits|(b>>sh&d.codec.mask)]
	}
	return math.Sqrt(float64(n)/float64(d.codec.paa)) * math.Sqrt(sum)
}

// Codec returns the evaluator's word codec.
func (d *CodeDist) Codec() WordCodec { return d.codec }
