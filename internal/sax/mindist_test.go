package sax

import (
	"math"
	"math/rand"
	"testing"

	"grammarviz/internal/timeseries"
)

func TestDistTableBasics(t *testing.T) {
	dt, err := NewDistTable(4)
	if err != nil {
		t.Fatalf("NewDistTable: %v", err)
	}
	// Adjacent letters have distance zero.
	for r := byte(0); r < 4; r++ {
		for c := byte(0); c < 4; c++ {
			d := dt.LetterDist(r, c)
			gap := int(r) - int(c)
			if gap < 0 {
				gap = -gap
			}
			if gap <= 1 && d != 0 {
				t.Errorf("LetterDist(%d,%d) = %v, want 0", r, c, d)
			}
			if gap > 1 && d <= 0 {
				t.Errorf("LetterDist(%d,%d) = %v, want > 0", r, c, d)
			}
			if d != dt.LetterDist(c, r) {
				t.Errorf("LetterDist not symmetric at (%d,%d)", r, c)
			}
		}
	}
	// a=4 cuts are [-0.6745, 0, 0.6745]; dist(a,c) = 0 - (-0.6745).
	if got := dt.LetterDist(0, 2); !almostEqual(got, 0.6745, 0.001) {
		t.Errorf("LetterDist(0,2) = %v, want ~0.6745", got)
	}
	if got := dt.LetterDist(0, 3); !almostEqual(got, 1.349, 0.001) {
		t.Errorf("LetterDist(0,3) = %v, want ~1.349", got)
	}
}

func TestMINDISTIdentical(t *testing.T) {
	dt, _ := NewDistTable(5)
	d, err := dt.MINDIST("abcde", "abcde", 100)
	if err != nil {
		t.Fatalf("MINDIST: %v", err)
	}
	if d != 0 {
		t.Errorf("MINDIST identical = %v, want 0", d)
	}
	// Neighbouring letters everywhere also give zero.
	d, _ = dt.MINDIST("abcde", "bbcdd", 100)
	if d != 0 {
		t.Errorf("MINDIST neighbours = %v, want 0", d)
	}
}

func TestMINDISTErrors(t *testing.T) {
	dt, _ := NewDistTable(4)
	if _, err := dt.MINDIST("abc", "ab", 10); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := dt.MINDIST("", "", 10); err == nil {
		t.Error("empty words should error")
	}
	if _, err := dt.MINDIST("axz", "abc", 10); err == nil {
		t.Error("letters outside alphabet should error")
	}
}

// The defining property of SAX: MINDIST lower-bounds the Euclidean
// distance between the z-normalized source subsequences.
func TestMINDISTLowerBoundsEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, w, a = 64, 8, 6
	p := Params{Window: n, PAA: w, Alphabet: a}
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	dt, err := NewDistTable(a)
	if err != nil {
		t.Fatalf("NewDistTable: %v", err)
	}
	for trial := 0; trial < 500; trial++ {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		wx, err := enc.Encode(x)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		wy, err := enc.Encode(y)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		md, err := dt.MINDIST(wx, wy, n)
		if err != nil {
			t.Fatalf("MINDIST: %v", err)
		}
		zx := timeseries.ZNormalize(x, timeseries.DefaultNormThreshold)
		zy := timeseries.ZNormalize(y, timeseries.DefaultNormThreshold)
		var sum float64
		for i := range zx {
			d := zx[i] - zy[i]
			sum += d * d
		}
		euc := math.Sqrt(sum)
		if md > euc+1e-9 {
			t.Fatalf("trial %d: MINDIST %v > Euclidean %v (words %q %q)", trial, md, euc, wx, wy)
		}
	}
}
