package sax

import (
	"math"
	"math/rand"
	"testing"
)

func sineSeries(n int, period float64) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	return ts
}

func TestDiscretizeOrderingAndOffsets(t *testing.T) {
	ts := sineSeries(200, 40)
	p := Params{Window: 40, PAA: 4, Alphabet: 4}
	d, err := Discretize(ts, p, ReductionNone)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	if d.Raw != 161 {
		t.Errorf("Raw = %d, want 161", d.Raw)
	}
	if len(d.Words) != 161 {
		t.Errorf("no-reduction words = %d, want 161", len(d.Words))
	}
	for i, w := range d.Words {
		if w.Offset != i {
			t.Fatalf("offset[%d] = %d, want %d", i, w.Offset, i)
		}
		if len(w.Str) != 4 {
			t.Fatalf("word %q has wrong length", w.Str)
		}
	}
}

func TestDiscretizeExactReduction(t *testing.T) {
	ts := sineSeries(400, 40)
	p := Params{Window: 40, PAA: 4, Alphabet: 4}
	none, err := Discretize(ts, p, ReductionNone)
	if err != nil {
		t.Fatalf("Discretize none: %v", err)
	}
	exact, err := Discretize(ts, p, ReductionExact)
	if err != nil {
		t.Fatalf("Discretize exact: %v", err)
	}
	if len(exact.Words) >= len(none.Words) {
		t.Errorf("exact reduction should shrink words: %d vs %d", len(exact.Words), len(none.Words))
	}
	// No two consecutive recorded words are identical.
	for i := 1; i < len(exact.Words); i++ {
		if exact.Words[i].Str == exact.Words[i-1].Str {
			t.Fatalf("consecutive duplicate word %q at %d", exact.Words[i].Str, i)
		}
	}
	// Offsets strictly increase.
	for i := 1; i < len(exact.Words); i++ {
		if exact.Words[i].Offset <= exact.Words[i-1].Offset {
			t.Fatalf("offsets not increasing at %d", i)
		}
	}
	if exact.ReductionRatio() <= 0 || exact.ReductionRatio() >= 1 {
		t.Errorf("ReductionRatio = %v", exact.ReductionRatio())
	}
	if none.ReductionRatio() != 0 {
		t.Errorf("none ReductionRatio = %v, want 0", none.ReductionRatio())
	}
}

func TestDiscretizeMINDISTReduction(t *testing.T) {
	ts := sineSeries(400, 40)
	p := Params{Window: 40, PAA: 4, Alphabet: 6}
	exact, err := Discretize(ts, p, ReductionExact)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	md, err := Discretize(ts, p, ReductionMINDIST)
	if err != nil {
		t.Fatalf("mindist: %v", err)
	}
	// MINDIST keeps a word only on a >1-region jump, so it records no more
	// words than EXACT.
	if len(md.Words) > len(exact.Words) {
		t.Errorf("MINDIST kept %d words, EXACT %d; want <=", len(md.Words), len(exact.Words))
	}
	for i := 1; i < len(md.Words); i++ {
		if wordsMINDISTZero(md.Words[i].Str, md.Words[i-1].Str) {
			t.Fatalf("consecutive MINDIST-zero words at %d: %q %q",
				i, md.Words[i-1].Str, md.Words[i].Str)
		}
	}
}

func TestDiscretizeFirstWordAlwaysRecorded(t *testing.T) {
	ts := make([]float64, 100) // constant series: all words identical
	p := Params{Window: 10, PAA: 2, Alphabet: 3}
	d, err := Discretize(ts, p, ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	if len(d.Words) != 1 || d.Words[0].Offset != 0 {
		t.Errorf("constant series should reduce to a single word, got %v", d.Words)
	}
}

func TestDiscretizeErrors(t *testing.T) {
	ts := sineSeries(50, 10)
	if _, err := Discretize(ts, Params{Window: 100, PAA: 4, Alphabet: 4}, ReductionExact); err == nil {
		t.Error("oversize window should error")
	}
	if _, err := Discretize(ts, Params{Window: 10, PAA: 20, Alphabet: 4}, ReductionExact); err == nil {
		t.Error("PAA > window should error")
	}
}

func TestStringsAndOffsets(t *testing.T) {
	ts := sineSeries(100, 25)
	d, err := Discretize(ts, Params{Window: 25, PAA: 5, Alphabet: 4}, ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	ss, offs := d.Strings(), d.Offsets()
	if len(ss) != len(d.Words) || len(offs) != len(d.Words) {
		t.Fatal("Strings/Offsets length mismatch")
	}
	for i := range ss {
		if ss[i] != d.Words[i].Str || offs[i] != d.Words[i].Offset {
			t.Fatalf("Strings/Offsets mismatch at %d", i)
		}
	}
}

func TestReductionString(t *testing.T) {
	tests := []struct {
		r    Reduction
		want string
	}{
		{ReductionNone, "NONE"},
		{ReductionExact, "EXACT"},
		{ReductionMINDIST, "MINDIST"},
		{Reduction(9), "Reduction(9)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.r), got, tt.want)
		}
	}
}

func TestDiscretizeNoisyReducesLess(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	smooth := sineSeries(500, 50)
	noisy := make([]float64, len(smooth))
	for i, v := range smooth {
		noisy[i] = v + rng.NormFloat64()*0.8
	}
	p := Params{Window: 50, PAA: 5, Alphabet: 5}
	ds, err := Discretize(smooth, p, ReductionExact)
	if err != nil {
		t.Fatalf("smooth: %v", err)
	}
	dn, err := Discretize(noisy, p, ReductionExact)
	if err != nil {
		t.Fatalf("noisy: %v", err)
	}
	if len(dn.Words) <= len(ds.Words) {
		t.Errorf("noise should defeat numerosity reduction: noisy %d <= smooth %d",
			len(dn.Words), len(ds.Words))
	}
}
