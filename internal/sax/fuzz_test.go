package sax

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"grammarviz/internal/timeseries"
)

// fuzzSeries decodes a fuzz input into discretization parameters and a raw
// float64 series. The floats are the raw bit patterns of the input bytes,
// so the fuzzer explores NaN payloads, infinities, denormals and huge
// magnitudes without any help.
func fuzzSeries(data []byte) (Params, []float64) {
	if len(data) < 3 {
		return Params{}, nil
	}
	p := Params{
		Window:   2 + int(data[0])%40,
		PAA:      1 + int(data[1])%8,
		Alphabet: 2 + int(data[2])%9,
	}
	data = data[3:]
	ts := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		ts = append(ts, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return p, ts
}

// FuzzDiscretize cross-checks the production discretization (incremental
// sliding statistics, with its guarded fallback to the naive path) against
// the naive reference on arbitrary inputs: both must agree byte-for-byte
// on every recorded word and offset, for the serial and the parallel
// worker paths alike, and non-finite inputs must be rejected identically
// by both with ErrInvalidValue.
func FuzzDiscretize(f *testing.F) {
	f.Add([]byte{10, 3, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ts := fuzzSeries(data)
		if len(ts) == 0 || p.Validate(len(ts)) != nil {
			return
		}
		for _, red := range []Reduction{ReductionExact, ReductionNone, ReductionMINDIST} {
			want, refErr := DiscretizeReference(ts, p, red)
			for _, workers := range []int{1, 3} {
				got, err := DiscretizeWorkers(ts, p, red, workers)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("red=%v workers=%d: err=%v refErr=%v", red, workers, err, refErr)
				}
				if err != nil {
					if !errors.Is(err, timeseries.ErrInvalidValue) {
						t.Fatalf("red=%v workers=%d: rejection not ErrInvalidValue: %v", red, workers, err)
					}
					continue
				}
				if len(got.Words) != len(want.Words) {
					t.Fatalf("red=%v workers=%d: %d words, reference %d", red, workers, len(got.Words), len(want.Words))
				}
				for i := range got.Words {
					if got.Words[i] != want.Words[i] {
						t.Fatalf("red=%v workers=%d: word %d = %+v, reference %+v", red, workers, i, got.Words[i], want.Words[i])
					}
				}
			}
		}
	})
}
