package sax

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBreakpointsKnownValues(t *testing.T) {
	// Classic SAX lookup-table values (Lin et al. 2003).
	tests := []struct {
		a    int
		want []float64
	}{
		{2, []float64{0}},
		{3, []float64{-0.43, 0.43}},
		{4, []float64{-0.67, 0, 0.67}},
		{5, []float64{-0.84, -0.25, 0.25, 0.84}},
		{6, []float64{-0.97, -0.43, 0, 0.43, 0.97}},
		{10, []float64{-1.28, -0.84, -0.52, -0.25, 0, 0.25, 0.52, 0.84, 1.28}},
	}
	for _, tt := range tests {
		got, err := Breakpoints(tt.a)
		if err != nil {
			t.Fatalf("Breakpoints(%d): %v", tt.a, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("Breakpoints(%d) len = %d, want %d", tt.a, len(got), len(tt.want))
		}
		for i := range tt.want {
			if !almostEqual(got[i], tt.want[i], 0.005) {
				t.Errorf("Breakpoints(%d)[%d] = %.4f, want %.2f", tt.a, i, got[i], tt.want[i])
			}
		}
	}
}

func TestBreakpointsErrors(t *testing.T) {
	for _, a := range []int{-1, 0, 1, 27, 100} {
		if _, err := Breakpoints(a); !errors.Is(err, ErrBadAlphabet) {
			t.Errorf("Breakpoints(%d) err = %v, want ErrBadAlphabet", a, err)
		}
	}
}

// Property: breakpoints are strictly increasing and symmetric about zero.
func TestBreakpointsMonotoneSymmetric(t *testing.T) {
	for a := MinAlphabet; a <= MaxAlphabet; a++ {
		cuts, err := Breakpoints(a)
		if err != nil {
			t.Fatalf("Breakpoints(%d): %v", a, err)
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				t.Errorf("a=%d: cuts not increasing at %d: %v", a, i, cuts)
			}
		}
		for i := range cuts {
			if !almostEqual(cuts[i], -cuts[len(cuts)-1-i], 1e-9) {
				t.Errorf("a=%d: cuts not symmetric: %v", a, cuts)
			}
		}
	}
}

func TestLetter(t *testing.T) {
	cuts, _ := Breakpoints(4) // [-0.6745, 0, 0.6745]
	tests := []struct {
		v    float64
		want byte
	}{
		{-2, 0},
		{-0.7, 0},
		{-0.5, 1},
		{-0.0001, 1},
		{0, 2}, // value equal to a cut maps to the upper region
		{0.5, 2},
		{0.7, 3},
		{5, 3},
	}
	for _, tt := range tests {
		if got := Letter(cuts, tt.v); got != tt.want {
			t.Errorf("Letter(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

// Property: Letter agrees with a linear scan for random values/alphabets.
func TestLetterMatchesLinearScan(t *testing.T) {
	f := func(aRaw uint8, v float64) bool {
		a := int(aRaw)%(MaxAlphabet-MinAlphabet+1) + MinAlphabet
		if math.IsNaN(v) {
			return true
		}
		cuts, err := Breakpoints(a)
		if err != nil {
			return false
		}
		want := byte(0)
		for _, c := range cuts {
			if c <= v {
				want++
			}
		}
		return Letter(cuts, v) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCharRoundTrip(t *testing.T) {
	for i := byte(0); i < 26; i++ {
		if CharToIndex(IndexToChar(i)) != i {
			t.Fatalf("char round trip failed at %d", i)
		}
	}
	if IndexToChar(0) != 'a' || IndexToChar(2) != 'c' {
		t.Error("IndexToChar wrong base")
	}
}
