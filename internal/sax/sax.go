package sax

import (
	"fmt"

	"grammarviz/internal/paa"
	"grammarviz/internal/timeseries"
)

// Params bundles the three SAX discretization parameters the paper sweeps:
// sliding-window length, PAA segment count (word length), and alphabet
// size. NormThreshold controls the flat-subsequence guard of
// z-normalization; zero selects timeseries.DefaultNormThreshold.
type Params struct {
	Window   int // sliding window length (n in the paper)
	PAA      int // word length / number of PAA segments (w)
	Alphabet int // alphabet size (a)

	// NormThreshold is the z-normalization std threshold; 0 means
	// timeseries.DefaultNormThreshold.
	NormThreshold float64
}

// Validate checks the parameters against a series of length n.
func (p Params) Validate(n int) error {
	if p.Window <= 0 || p.Window > n {
		return fmt.Errorf("%w: window=%d n=%d", timeseries.ErrBadWindow, p.Window, n)
	}
	if p.PAA <= 0 || p.PAA > p.Window {
		return fmt.Errorf("%w: paa=%d window=%d", paa.ErrBadSegments, p.PAA, p.Window)
	}
	if p.Alphabet < MinAlphabet || p.Alphabet > MaxAlphabet {
		return fmt.Errorf("%w: %d", ErrBadAlphabet, p.Alphabet)
	}
	return nil
}

func (p Params) normThreshold() float64 {
	if p.NormThreshold > 0 {
		return p.NormThreshold
	}
	return timeseries.DefaultNormThreshold
}

// String renders the parameters in the paper's (window, PAA, alphabet)
// notation, e.g. "(120,4,4)".
func (p Params) String() string {
	return fmt.Sprintf("(%d,%d,%d)", p.Window, p.PAA, p.Alphabet)
}

// Encoder discretizes subsequences into SAX words. It precomputes the
// breakpoint table and reuses internal buffers, so a single Encoder is
// cheap to call in a sliding-window loop. An Encoder is not safe for
// concurrent use; create one per goroutine.
type Encoder struct {
	params Params
	cuts   []float64
	znorm  []float64 // scratch: z-normalized window
	segs   []float64 // scratch: PAA output
	word   []byte    // scratch: letter buffer for EncodeCode
	codec  WordCodec

	// overflowErr is EncodeCode's ErrCodeOverflow, built once here so the
	// //gvad:noalloc hot path returns it without a per-call fmt.Errorf.
	overflowErr error
}

// NewEncoder returns an Encoder for the given parameters. Window-related
// validation happens per call (windows of any length >= PAA are accepted,
// which RRA needs for variable-length subsequences).
func NewEncoder(p Params) (*Encoder, error) {
	if p.PAA <= 0 {
		return nil, fmt.Errorf("%w: paa=%d", paa.ErrBadSegments, p.PAA)
	}
	cuts, err := Breakpoints(p.Alphabet)
	if err != nil {
		return nil, err
	}
	return &Encoder{
		params: p,
		cuts:   cuts,
		segs:   make([]float64, p.PAA),
		word:   make([]byte, p.PAA),
		codec:  NewWordCodec(p.PAA, p.Alphabet),
		overflowErr: fmt.Errorf("%w: paa=%d alphabet=%d",
			ErrCodeOverflow, p.PAA, p.Alphabet),
	}, nil
}

// Params returns the encoder's discretization parameters.
func (e *Encoder) Params() Params { return e.params }

// Encode discretizes one subsequence (of any length >= PAA) into a SAX
// word of e.Params().PAA letters.
func (e *Encoder) Encode(sub []float64) (string, error) {
	word := make([]byte, e.params.PAA)
	if err := e.EncodeInto(word, sub); err != nil {
		return "", err
	}
	return string(word), nil
}

// EncodeInto discretizes one subsequence into dst, which must hold exactly
// e.Params().PAA bytes. It is the allocation-free variant of Encode for
// sliding-window loops that reuse a word buffer.
func (e *Encoder) EncodeInto(dst []byte, sub []float64) error {
	if len(dst) != e.params.PAA {
		return fmt.Errorf("%w: dst length %d != paa %d",
			paa.ErrBadSegments, len(dst), e.params.PAA)
	}
	if len(sub) < e.params.PAA {
		return fmt.Errorf("%w: subsequence length %d < paa %d",
			paa.ErrBadSegments, len(sub), e.params.PAA)
	}
	if cap(e.znorm) < len(sub) {
		e.znorm = make([]float64, len(sub))
	}
	zn := e.znorm[:len(sub)]
	timeseries.ZNormalizeInto(zn, sub, e.params.normThreshold())
	if err := paa.TransformInto(e.segs, zn); err != nil {
		return err
	}
	for i, m := range e.segs {
		dst[i] = IndexToChar(Letter(e.cuts, m))
	}
	return nil
}

// Encode is a convenience one-shot wrapper around NewEncoder + Encode.
func Encode(sub []float64, p Params) (string, error) {
	e, err := NewEncoder(p)
	if err != nil {
		return "", err
	}
	return e.Encode(sub)
}
