package sax

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"grammarviz/internal/worker"
)

// TestChunkPanicContained injects a panic into one parallel discretization
// chunk: it must surface as an error carrying the panic value and stack,
// the process must survive, and no worker goroutine may leak.
func TestChunkPanicContained(t *testing.T) {
	ts := sineSeries(4000, 45)
	p := Params{Window: 60, PAA: 4, Alphabet: 4}

	baseline := runtime.NumGoroutine()
	// The hook runs concurrently on every chunk goroutine, so the trigger
	// must be a pure function of the chunk bounds: every non-first chunk
	// panics (the group keeps the first panic, recovers the rest).
	testHookChunk = func(lo, hi int) {
		if lo > 0 {
			panic("chunk-boom-13")
		}
	}
	defer func() { testHookChunk = nil }()

	_, err := DiscretizeWorkers(ts, p, ReductionExact, 4)
	if err == nil {
		t.Fatal("injected panic did not surface as an error")
	}
	var pe *worker.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *worker.PanicError", err)
	}
	if pe.Value != "chunk-boom-13" {
		t.Errorf("panic value = %v, want chunk-boom-13", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack trace")
	}
	if !strings.Contains(err.Error(), "chunk-boom-13") {
		t.Errorf("error message %q does not mention the panic value", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("goroutines did not settle: %d running, want <= %d", g, baseline)
	}
}

// TestDiscretizeCtxCancelled checks that a cancelled context aborts both
// the serial and the parallel discretization paths with a wrapped
// ctx.Err(), and that a background context yields results identical to the
// legacy entry point.
func TestDiscretizeCtxCancelled(t *testing.T) {
	ts := sineSeries(4000, 45)
	p := Params{Window: 60, PAA: 4, Alphabet: 4}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := DiscretizeCtx(ctx, ts, p, ReductionExact, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}

	want, err := Discretize(ts, p, ReductionExact)
	if err != nil {
		t.Fatalf("Discretize: %v", err)
	}
	for _, workers := range []int{1, 4} {
		got, err := DiscretizeCtx(context.Background(), ts, p, ReductionExact, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Words) != len(want.Words) {
			t.Fatalf("workers=%d: %d words, want %d", workers, len(got.Words), len(want.Words))
		}
		for i := range got.Words {
			if got.Words[i] != want.Words[i] {
				t.Fatalf("workers=%d: word %d = %+v, want %+v", workers, i, got.Words[i], want.Words[i])
			}
		}
	}
}
