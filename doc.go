// Package grammarviz discovers variable-length anomalies in time series
// using grammar-based compression, implementing Senin et al., "Time series
// anomaly discovery with grammar-based compression" (EDBT 2015).
//
// The pipeline discretizes the series with sliding-window SAX, induces a
// context-free grammar over the resulting word sequence with Sequitur, and
// maps every grammar rule back to the subsequences it derives. Because
// Sequitur compresses exactly the recurrent structure, subsequences that
// stay out of grammar rules are algorithmically incompressible —
// Kolmogorov-random relative to the rest of the series — and correspond to
// anomalies.
//
// Two detectors are provided:
//
//   - the rule density curve (approximate, linear time and space): the
//     number of rules covering each point; intervals at the curve's
//     minima are anomaly candidates;
//   - RRA, Rare Rule Anomaly (exact): a discord search over the
//     variable-length rule intervals, ordered by rule rarity, using the
//     length-normalized Euclidean distance.
//
// # Quick start
//
//	det, err := grammarviz.New(series, grammarviz.Options{
//		Window: 120, PAA: 4, Alphabet: 4,
//	})
//	if err != nil { ... }
//	discords, err := det.Discords(3) // top-3 variable-length anomalies
//
// The fixed-length baselines the paper compares against (brute force and
// HOTSAX) are exposed as BruteForceDiscords and HOTSAXDiscords; spatial
// trajectories can be linearized with TrajectoryToSeries; and Stream
// provides the left-to-right streaming variant sketched in the paper's
// future work.
//
// # Cancellation and robustness
//
// Every analysis entry point has a context-aware variant (NewCtx,
// Detector.DiscordsCtx, MultiscaleDensityCtx) that polls the context at
// bounded intervals and returns a ctx.Err()-wrapped error on cancellation;
// with a never-cancelled context the results are byte-identical to the
// plain variants at every worker count. Deadline-bound callers can use
// Detector.DiscordsBestEffort, which degrades to partial results and then
// to the density-curve approximation instead of failing. Worker panics in
// the parallel stages are recovered into errors rather than crashing the
// process. Non-finite input (NaN, ±Inf) is rejected everywhere with an
// ErrInvalidValue-wrapped error naming the first bad index; clean a series
// with Interpolate first.
//
// A Stream retains every consumed point — memory grows O(points); see
// Stream.MemStats to observe retention and Stream.Reset to reclaim it at
// epoch boundaries.
package grammarviz
