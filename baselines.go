package grammarviz

import (
	"context"
	"fmt"

	"grammarviz/internal/discord"
	"grammarviz/internal/sax"
	"grammarviz/internal/viztree"
	"grammarviz/internal/wcad"
)

// BruteForceDiscords finds the top-k fixed-length discords by exhaustive
// O(n^2) search — the exactness baseline of the paper's Table 1. It also
// returns the number of distance-function calls made.
func BruteForceDiscords(ts []float64, window, k int) ([]Discord, int64, error) {
	res, err := discord.BruteForce(ts, window, k)
	if err != nil {
		return nil, res.DistCalls, fmt.Errorf("grammarviz: %w", err)
	}
	return convertDiscords(res.Discords), res.DistCalls, nil
}

// HOTSAXDiscords finds the top-k fixed-length discords with the HOTSAX
// heuristic (Keogh, Lin, Fu 2005) — the state-of-the-art baseline the
// paper compares RRA against. The result is exact for the given window;
// paa and alphabet only steer the search-order heuristic. It also returns
// the number of distance-function calls made.
func HOTSAXDiscords(ts []float64, window, paa, alphabet, k int, seed int64) ([]Discord, int64, error) {
	res, err := discord.HOTSAX(ts, sax.Params{Window: window, PAA: paa, Alphabet: alphabet}, k, seed)
	if err != nil {
		return nil, res.DistCalls, fmt.Errorf("grammarviz: %w", err)
	}
	return convertDiscords(res.Discords), res.DistCalls, nil
}

// HOTSAXDiscordsCtx is HOTSAXDiscords with cooperative cancellation: the
// search polls ctx at bounded intervals and returns a ctx.Err()-wrapped
// error when the deadline passes. With a never-cancelled context the
// result is identical to HOTSAXDiscords'. It serves deadline-bound
// callers such as the gvad daemon's hotsax mode, and runs with the coded
// MINDIST pre-filter — same discords, fewer distance calls.
func HOTSAXDiscordsCtx(ctx context.Context, ts []float64, window, paa, alphabet, k int, seed int64) ([]Discord, int64, error) {
	res, err := discord.HOTSAXStatsCodedCtx(ctx, discord.NewStats(ts), sax.Params{Window: window, PAA: paa, Alphabet: alphabet}, k, seed)
	if err != nil {
		return nil, res.DistCalls, fmt.Errorf("grammarviz: %w", err)
	}
	return convertDiscords(res.Discords), res.DistCalls, nil
}

// BruteForceCallCount returns, without running the search, the number of
// distance calls a brute-force top-1 discord search would make on a
// series of length n with the given window.
func BruteForceCallCount(n, window int) int64 {
	return discord.BruteForceCallCount(n, window)
}

// VizTreeAnomaly is one window-scale anomaly from the VizTree baseline.
type VizTreeAnomaly struct {
	Start, End int
	Word       string // the window's SAX word
	Count      int    // how many windows share that word
}

// VizTreeAnomalies runs the VizTree baseline (Lin et al. 2004, discussed
// in the paper's Section 6): every window's SAX word is counted in a
// frequency trie and the k rarest non-overlapping windows are returned.
// Unlike the grammar-based detectors, VizTree ignores word ordering and is
// locked to the window scale.
func VizTreeAnomalies(ts []float64, window, paa, alphabet, k int) ([]VizTreeAnomaly, error) {
	tr, err := viztree.Build(ts, sax.Params{Window: window, PAA: paa, Alphabet: alphabet})
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	raw := tr.Anomalies(k)
	out := make([]VizTreeAnomaly, len(raw))
	for i, a := range raw {
		out[i] = VizTreeAnomaly{Start: a.Interval.Start, End: a.Interval.End, Word: a.Word, Count: a.Count}
	}
	return out, nil
}

// WCADScore is one chunk's score from the WCAD baseline.
type WCADScore struct {
	Start, End int
	// CDM is the compression-based dissimilarity of the chunk against the
	// rest of the series; higher means more anomalous.
	CDM float64
}

// WCADScores runs the compression-based WCAD baseline (Keogh et al. 2004,
// discussed in the paper's Section 6): the series is cut into
// window-sized chunks and each chunk is scored by how poorly it
// compresses together with the rest of the series, using the same
// Sequitur compressor as the main pipeline. Chunks are returned most
// anomalous first. WCAD needs the anomaly size as input and runs the
// compressor once per chunk — the costs the paper's approach removes.
func WCADScores(ts []float64, window, paa, alphabet int) ([]WCADScore, error) {
	raw, err := wcad.Detect(ts, sax.Params{Window: window, PAA: paa, Alphabet: alphabet})
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	out := make([]WCADScore, len(raw))
	for i, s := range raw {
		out[i] = WCADScore{Start: s.Interval.Start, End: s.Interval.End, CDM: s.CDM}
	}
	return out, nil
}
