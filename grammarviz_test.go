package grammarviz

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// testSeries builds a noisy sine with a planted frequency-burst anomaly.
func testSeries(n int, period float64, at, length int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	for i := at; i < at+length && i < n; i++ {
		ts[i] = math.Sin(4*math.Pi*float64(i)/period) + rng.NormFloat64()*0.02
	}
	return ts
}

func newTestDetector(t *testing.T) (*Detector, Interval) {
	t.Helper()
	ts := testSeries(1800, 60, 900, 60, 1)
	det, err := New(ts, Options{Window: 60, PAA: 6, Alphabet: 4, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return det, Interval{Start: 840, End: 1020}
}

func TestNewValidation(t *testing.T) {
	ts := testSeries(500, 50, 250, 50, 2)
	tests := []struct {
		name string
		opts Options
	}{
		{"window too large", Options{Window: 1000, PAA: 4, Alphabet: 4}},
		{"zero window", Options{Window: 0, PAA: 4, Alphabet: 4}},
		{"paa exceeds window", Options{Window: 10, PAA: 20, Alphabet: 4}},
		{"alphabet too small", Options{Window: 50, PAA: 5, Alphabet: 1}},
		{"bad reduction", Options{Window: 50, PAA: 5, Alphabet: 4, Reduction: Reduction(9)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(ts, tt.opts); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNewRejectsNaN(t *testing.T) {
	ts := testSeries(500, 50, 250, 50, 3)
	ts[7] = math.NaN()
	if _, err := New(ts, Options{Window: 50, PAA: 5, Alphabet: 4}); err == nil {
		t.Error("NaN should be rejected")
	}
	clean, err := Interpolate(ts)
	if err != nil {
		t.Fatalf("Interpolate: %v", err)
	}
	if _, err := New(clean, Options{Window: 50, PAA: 5, Alphabet: 4}); err != nil {
		t.Errorf("after Interpolate: %v", err)
	}
	if math.IsNaN(ts[7]) == false {
		t.Error("Interpolate must not modify its input")
	}
}

func TestDetectorDiscords(t *testing.T) {
	det, truth := newTestDetector(t)
	discords, err := det.Discords(2)
	if err != nil {
		t.Fatalf("Discords: %v", err)
	}
	if len(discords) == 0 {
		t.Fatal("no discords")
	}
	if !discords[0].Interval().Overlaps(truth) {
		t.Errorf("best discord %v misses planted %v", discords[0].Interval(), truth)
	}
	if discords[0].Distance <= 0 {
		t.Errorf("Distance = %v", discords[0].Distance)
	}
	if got := discords[0].Len(); got != discords[0].End-discords[0].Start+1 {
		t.Errorf("Len = %d", got)
	}
	if s := discords[0].String(); !strings.Contains(s, "discord") {
		t.Errorf("String = %q", s)
	}
}

func TestDetectorDiscordsWithStats(t *testing.T) {
	det, _ := newTestDetector(t)
	_, calls, err := det.DiscordsWithStats(1)
	if err != nil {
		t.Fatalf("DiscordsWithStats: %v", err)
	}
	if calls <= 0 {
		t.Errorf("calls = %d", calls)
	}
	bfCalls := BruteForceCallCount(len(det.Series()), 60)
	if calls >= bfCalls {
		t.Errorf("RRA calls %d >= brute force %d", calls, bfCalls)
	}
}

func TestDetectorDensity(t *testing.T) {
	det, truth := newTestDetector(t)
	curve := det.RuleDensity()
	if len(curve) != len(det.Series()) {
		t.Fatalf("curve length %d", len(curve))
	}
	minima := det.GlobalMinima()
	if len(minima) == 0 {
		t.Fatal("no minima")
	}
	hit := false
	for _, a := range minima {
		if a.Interval().Overlaps(truth) {
			hit = true
		}
	}
	if !hit {
		t.Errorf("minima %v miss planted %v", minima, truth)
	}
	anoms := det.DensityAnomalies(1<<30, 0)
	if len(anoms) == 0 {
		t.Error("huge threshold should return intervals")
	}
	if got := det.DensityAnomalies(0, 0); len(got) != 0 {
		t.Errorf("zero threshold returned %v", got)
	}
}

func TestDetectorGrammarAccessors(t *testing.T) {
	det, _ := newTestDetector(t)
	if det.NumRules() == 0 {
		t.Error("NumRules = 0 on periodic data")
	}
	if det.GrammarSize() <= 0 {
		t.Error("GrammarSize <= 0")
	}
	if !strings.Contains(det.Grammar(), "R0 ->") {
		t.Error("Grammar() missing root")
	}
	rules := det.Rules()
	if len(rules) != det.NumRules() {
		t.Errorf("Rules() len %d != NumRules %d", len(rules), det.NumRules())
	}
	for _, r := range rules {
		if r.Frequency != len(r.Occurrences) {
			t.Errorf("R%d frequency %d != %d occurrences", r.ID, r.Frequency, len(r.Occurrences))
		}
		if r.Frequency < 2 {
			t.Errorf("R%d used %d times", r.ID, r.Frequency)
		}
	}
	words := det.Words()
	if len(words) == 0 {
		t.Error("no words")
	}
	for i := 1; i < len(words); i++ {
		if words[i].Offset <= words[i-1].Offset {
			t.Fatal("word offsets not increasing")
		}
	}
}

func TestDetectorDiagnose(t *testing.T) {
	det, _ := newTestDetector(t)
	diag := det.Diagnose()
	if diag.Words <= 0 || diag.RawWindows < diag.Words {
		t.Errorf("diagnostics words: %+v", diag)
	}
	if diag.ReductionRatio <= 0 || diag.ReductionRatio >= 1 {
		t.Errorf("ReductionRatio = %v", diag.ReductionRatio)
	}
	if diag.ApproxDistance <= 0 {
		t.Errorf("ApproxDistance = %v", diag.ApproxDistance)
	}
	if diag.ZeroDensity < 0 || diag.ZeroDensity > 1 {
		t.Errorf("ZeroDensity = %v", diag.ZeroDensity)
	}
}

func TestBaselines(t *testing.T) {
	ts := testSeries(900, 45, 450, 45, 4)
	truth := Interval{Start: 400, End: 545}

	bf, bfCalls, err := BruteForceDiscords(ts, 45, 1)
	if err != nil {
		t.Fatalf("BruteForceDiscords: %v", err)
	}
	if !bf[0].Interval().Overlaps(truth) {
		t.Errorf("brute force %v misses %v", bf[0].Interval(), truth)
	}
	hs, hsCalls, err := HOTSAXDiscords(ts, 45, 3, 3, 1, 1)
	if err != nil {
		t.Fatalf("HOTSAXDiscords: %v", err)
	}
	if math.Abs(hs[0].Distance-bf[0].Distance) > 1e-9 {
		t.Errorf("HOTSAX dist %v != brute force %v", hs[0].Distance, bf[0].Distance)
	}
	if hsCalls >= bfCalls {
		t.Errorf("HOTSAX calls %d >= brute force %d", hsCalls, bfCalls)
	}
	if bfCalls != BruteForceCallCount(900, 45) {
		t.Errorf("analytic count mismatch: %d vs %d", bfCalls, BruteForceCallCount(900, 45))
	}
}

func TestBaselineErrors(t *testing.T) {
	if _, _, err := BruteForceDiscords([]float64{1, 2}, 10, 1); err == nil {
		t.Error("oversize window should error")
	}
	if _, _, err := HOTSAXDiscords([]float64{1, 2}, 10, 4, 4, 1, 1); err == nil {
		t.Error("oversize window should error")
	}
}

func TestTrajectoryToSeries(t *testing.T) {
	xs := []float64{0, 0, 10, 10}
	ys := []float64{0, 10, 10, 0}
	got, err := TrajectoryToSeries(xs, ys, 2)
	if err != nil {
		t.Fatalf("TrajectoryToSeries: %v", err)
	}
	want := []float64{0, 5, 10, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("series = %v, want %v", got, want)
		}
	}
	if _, err := TrajectoryToSeries(xs, ys[:2], 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := TrajectoryToSeries(xs, ys, 0); err == nil {
		t.Error("bad order should error")
	}
}

func TestStreamAPI(t *testing.T) {
	ts := testSeries(1200, 60, 600, 60, 5)
	s, err := NewStream(Options{Window: 60, PAA: 6, Alphabet: 4})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	events := 0
	for _, v := range ts {
		if _, ok, _ := s.Append(v); ok {
			events++
		}
	}
	if events == 0 {
		t.Fatal("no stream events")
	}
	if s.Len() != len(ts) {
		t.Errorf("Len = %d", s.Len())
	}
	anoms, err := s.Anomalies()
	if err != nil {
		t.Fatalf("Anomalies: %v", err)
	}
	if len(anoms) == 0 {
		t.Error("no anomalies from stream snapshot")
	}
	curve, err := s.RuleDensity()
	if err != nil {
		t.Fatalf("RuleDensity: %v", err)
	}
	if len(curve) != len(ts) {
		t.Errorf("curve length %d", len(curve))
	}
	// Stream and batch agree.
	det, err := New(ts, Options{Window: 60, PAA: 6, Alphabet: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	batch := det.RuleDensity()
	for i := range curve {
		if curve[i] != batch[i] {
			t.Fatalf("stream density differs from batch at %d", i)
		}
	}
}

func TestStreamAPIErrors(t *testing.T) {
	if _, err := NewStream(Options{Window: 10, PAA: 40, Alphabet: 4}); err == nil {
		t.Error("bad params should error")
	}
	if _, err := NewStream(Options{Window: 10, PAA: 4, Alphabet: 4, Reduction: Reduction(7)}); err == nil {
		t.Error("bad reduction should error")
	}
	s, _ := NewStream(Options{Window: 100, PAA: 4, Alphabet: 4})
	if _, err := s.Anomalies(); err == nil {
		t.Error("snapshot of empty stream should error")
	}
}

func TestIntervalHelpers(t *testing.T) {
	a := Interval{Start: 0, End: 9}
	if a.Len() != 10 {
		t.Errorf("Len = %d", a.Len())
	}
	if !a.Overlaps(Interval{Start: 9, End: 20}) || a.Overlaps(Interval{Start: 10, End: 20}) {
		t.Error("Overlaps wrong")
	}
	if a.String() != "[0,9]" {
		t.Errorf("String = %q", a.String())
	}
	an := Anomaly{Start: 3, End: 7}
	if an.Len() != 5 || an.Interval() != (Interval{Start: 3, End: 7}) {
		t.Error("Anomaly helpers wrong")
	}
}

func TestMultiscaleDensityAPI(t *testing.T) {
	ts := testSeries(1800, 60, 900, 60, 13)
	curve, err := MultiscaleDensity(ts, []int{30, 60, 120}, 5, 4)
	if err != nil {
		t.Fatalf("MultiscaleDensity: %v", err)
	}
	anoms := MultiscaleAnomalies(curve, 120, 0.2)
	if len(anoms) == 0 {
		t.Fatal("no multiscale anomalies")
	}
	planted := Interval{Start: 840, End: 1020}
	hit := false
	for _, a := range anoms {
		if a.Overlaps(planted) {
			hit = true
		}
	}
	if !hit {
		t.Errorf("multiscale anomalies %v miss %v", anoms, planted)
	}
	if _, err := MultiscaleDensity(ts, nil, 5, 4); err == nil {
		t.Error("no windows should error")
	}
}

func TestPrunedRules(t *testing.T) {
	det, _ := newTestDetector(t)
	full := det.Rules()
	pruned := det.PrunedRules(1)
	if len(pruned) == 0 {
		t.Fatal("pruning removed all rules")
	}
	if len(pruned) > len(full) {
		t.Errorf("pruned %d > full %d", len(pruned), len(full))
	}
	// Every pruned rule must exist in the full set with identical fields.
	byID := map[int]Rule{}
	for _, r := range full {
		byID[r.ID] = r
	}
	for _, r := range pruned {
		orig, ok := byID[r.ID]
		if !ok {
			t.Fatalf("pruned rule R%d not in full set", r.ID)
		}
		if orig.Body != r.Body || orig.Frequency != r.Frequency {
			t.Errorf("pruned rule R%d differs from original", r.ID)
		}
	}
}

func TestSurpriseAnomaliesAPI(t *testing.T) {
	det, truth := newTestDetector(t)
	anoms := det.SurpriseAnomalies(2, 0)
	if len(anoms) == 0 {
		t.Fatal("no surprise anomalies")
	}
	if !anoms[0].Interval().Overlaps(truth) {
		t.Errorf("top surprise anomaly %v misses %v", anoms[0].Interval(), truth)
	}
	for i := 1; i < len(anoms); i++ {
		if anoms[i].Surprise > anoms[i-1].Surprise {
			t.Error("surprise anomalies not ranked")
		}
	}
	// A very high bar returns nothing.
	if got := det.SurpriseAnomalies(1e9, 0); len(got) != 0 {
		t.Errorf("impossible bar returned %v", got)
	}
}

func TestVizTreeAndWCADBaselines(t *testing.T) {
	ts := testSeries(1800, 60, 600, 60, 17)
	truth := Interval{Start: 540, End: 720}

	vz, err := VizTreeAnomalies(ts, 60, 5, 4, 3)
	if err != nil {
		t.Fatalf("VizTreeAnomalies: %v", err)
	}
	if len(vz) == 0 {
		t.Fatal("no viztree anomalies")
	}
	if !(Interval{Start: vz[0].Start, End: vz[0].End}).Overlaps(truth) {
		t.Errorf("viztree top anomaly [%d,%d] misses %v", vz[0].Start, vz[0].End, truth)
	}
	if vz[0].Count < 1 || vz[0].Word == "" {
		t.Errorf("viztree anomaly fields: %+v", vz[0])
	}

	wc, err := WCADScores(ts, 60, 12, 5)
	if err != nil {
		t.Fatalf("WCADScores: %v", err)
	}
	if len(wc) != 30 {
		t.Fatalf("wcad chunks = %d", len(wc))
	}
	if !(Interval{Start: wc[0].Start, End: wc[0].End}).Overlaps(truth) {
		t.Errorf("wcad top chunk [%d,%d] misses %v", wc[0].Start, wc[0].End, truth)
	}

	if _, err := VizTreeAnomalies([]float64{1}, 60, 5, 4, 3); err == nil {
		t.Error("short series should error")
	}
	if _, err := WCADScores([]float64{1}, 60, 12, 5); err == nil {
		t.Error("short series should error")
	}
}

func TestDetrendAPI(t *testing.T) {
	// A series whose baseline wander dwarfs the signal: detection works
	// after Detrend.
	n := 2400
	ts := make([]float64, n)
	for i := range ts {
		x := float64(i)
		ts[i] = math.Sin(2*math.Pi*x/60) + 6*math.Sin(2*math.Pi*x/1100)
	}
	for i := 1200; i < 1260; i++ {
		ts[i] = 6*math.Sin(2*math.Pi*float64(i)/1100) + 0.2
	}
	flat, err := Detrend(ts, 121)
	if err != nil {
		t.Fatalf("Detrend: %v", err)
	}
	if ts[0] == flat[0] && ts[600] == flat[600] {
		t.Error("Detrend returned the input unchanged")
	}
	det, err := New(flat, Options{Window: 60, PAA: 6, Alphabet: 4, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	discords, err := det.Discords(2)
	if err != nil {
		t.Fatalf("Discords: %v", err)
	}
	// The noiseless series-head interval can rank first (a boundary
	// artifact the experiments harness documents); the planted anomaly
	// must be in the top two.
	planted := Interval{Start: 1140, End: 1320}
	hit := false
	for _, d := range discords {
		if d.Interval().Overlaps(planted) {
			hit = true
		}
	}
	if !hit {
		t.Errorf("discords %v miss planted %v after detrending", discords, planted)
	}
	if _, err := Detrend(ts, 0); err == nil {
		t.Error("zero window should error")
	}
}

func TestMotifs(t *testing.T) {
	det, truth := newTestDetector(t)
	motifs := det.Motifs(3)
	if len(motifs) == 0 {
		t.Fatal("no motifs on periodic data")
	}
	for i := 1; i < len(motifs); i++ {
		if motifs[i].Frequency > motifs[i-1].Frequency {
			t.Error("motifs not ranked by frequency")
		}
	}
	top := motifs[0]
	if top.Frequency < 3 {
		t.Errorf("top motif frequency = %d on a periodic signal", top.Frequency)
	}
	if len(top.Occurrences) != top.Frequency {
		t.Errorf("occurrences %d != frequency %d", len(top.Occurrences), top.Frequency)
	}
	// The top motif is the repeated normal pattern — most of its
	// occurrences must be outside the anomaly.
	outside := 0
	for _, iv := range top.Occurrences {
		if !iv.Overlaps(truth) {
			outside++
		}
	}
	if outside*2 < len(top.Occurrences) {
		t.Errorf("top motif mostly overlaps the anomaly: %d/%d outside", outside, len(top.Occurrences))
	}
	// k larger than the rule count clamps.
	if got := det.Motifs(10_000); len(got) != det.NumRules() {
		t.Errorf("Motifs(big) = %d, want %d", len(got), det.NumRules())
	}
}
