package grammarviz

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"grammarviz/internal/ensemble"
)

// ErrNoEnsembleMembers is the typed failure of an ensemble run in which
// not one member parameterization produced a usable density curve (e.g.
// the series is too short for every sampled window). Match with
// errors.Is; the caller never receives a silently zero score curve.
var ErrNoEnsembleMembers = ensemble.ErrNoValidMembers

// DefaultEnsembleMembers is the sampled member count EnsembleDensity uses
// when EnsembleOptions.Members is zero or negative. Exposed so serving
// layers can cost-model the default request without guessing.
const DefaultEnsembleMembers = ensemble.DefaultMembers

// EnsembleOptions configures the parameter-free ensemble detector. The
// zero value is fully usable — that is the point: no window, PAA, or
// alphabet to tune.
type EnsembleOptions struct {
	// Members is the number of sampled parameterizations; <= 0 selects
	// the default (20).
	Members int
	// Seed drives the parameter sampler. Equal (series, Members, Seed)
	// means byte-identical results, whatever Workers is.
	Seed int64
	// Workers bounds the parallel member inductions: 0 selects all
	// cores, 1 forces serial. Results are byte-identical for every value.
	Workers int
}

// EnsembleMember reports one sampled parameterization and whether it
// contributed to the fused score.
type EnsembleMember struct {
	Window   int  `json:"window"`
	PAA      int  `json:"paa"`
	Alphabet int  `json:"alphabet"`
	Used     bool `json:"used"`
}

// EnsembleResult is a fused ensemble analysis: the parameter-free anomaly
// score curve plus per-point member agreement.
type EnsembleResult struct {
	// Score has one value per series point in [0, 1]; low means the
	// point stays poorly covered by grammar rules across the sampled
	// discretizations — anomalous without any parameter choice.
	Score []float64 `json:"scores"`
	// Agreement is the fraction of used members voting each point
	// anomalous (member density below 0.2 of its own mean). High
	// agreement separates "every discretization flags this" from "a few
	// outlier members dragged the mean down".
	Agreement []float64 `json:"agreement"`
	// Members lists the sampled parameterizations in sampler order.
	Members []EnsembleMember `json:"members"`
	// Used counts members that contributed a usable curve.
	Used int `json:"members_used"`

	maxWindow int
}

// Anomalies thresholds the fused score curve: maximal intervals whose
// score stays within fraction of the way from the curve's minimum up to
// its mean (0.3 is a reasonable default), excluding one
// largest-member-window margin at each series edge. The anchoring at the
// observed minimum keeps the fraction meaningful on fused curves, whose
// floor sits well above zero. Intervals are returned in series order; the
// global minimum's interval is always among them.
func (r *EnsembleResult) Anomalies(fraction float64) []Interval {
	inner := &ensemble.Result{Score: r.Score, MaxWindow: r.maxWindow}
	raw := inner.Minima(fraction)
	out := make([]Interval, len(raw))
	for i, iv := range raw {
		out[i] = Interval{Start: iv.Start, End: iv.End}
	}
	return out
}

// EnsembleDensity runs the parameter-free ensemble detector (after Gao &
// Lin, "Ensemble Grammar Induction For Detecting Anomalies in Time
// Series"): opts.Members SAX parameterizations are sampled from the seed,
// deduplicated, and validated against the series; each valid member runs
// the full discretize→induce→density pipeline on pooled workspaces, in
// parallel; each member curve is normalized to [0, 1] by its own maximum;
// and the normalized curves are averaged into one anomaly score with
// per-point member agreement. Members that cannot analyze the series are
// skipped; if none can, the error wraps ErrNoEnsembleMembers.
func EnsembleDensity(ts []float64, opts EnsembleOptions) (*EnsembleResult, error) {
	return EnsembleDensityCtx(context.Background(), ts, opts)
}

// EnsembleDensityCtx is EnsembleDensity with cooperative cancellation and
// panic containment: member pipelines poll ctx at bounded strides, a
// cancelled or expired context aborts the remaining members with a
// ctx.Err()-wrapped error, and a panic on any member goroutine surfaces
// as an error instead of crashing. With a never-cancelled context the
// result is byte-identical to EnsembleDensity for every worker count.
func EnsembleDensityCtx(ctx context.Context, ts []float64, opts EnsembleOptions) (*EnsembleResult, error) {
	res, err := ensemble.Induce(ctx, ts, ensemble.Config{
		Members: opts.Members,
		Seed:    opts.Seed,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("grammarviz: %w", err)
	}
	out := &EnsembleResult{
		Score:     res.Score,
		Agreement: res.Agreement,
		Members:   make([]EnsembleMember, len(res.Members)),
		Used:      res.Used,
		maxWindow: res.MaxWindow,
	}
	for i, m := range res.Members {
		out.Members[i] = EnsembleMember{
			Window: m.Params.Window, PAA: m.Params.PAA, Alphabet: m.Params.Alphabet,
			Used: m.Used,
		}
	}
	return out, nil
}

// EnsembleFingerprint returns a stable, collision-resistant key
// identifying the analysis an (series, options) pair produces under
// EnsembleDensity: a SHA-256 over the raw IEEE-754 bits of every sample
// plus the options that influence the member set — Members (with the
// default applied) and Seed. Workers is deliberately excluded: it changes
// only wall-clock time, never results. Equal fingerprints yield
// byte-identical EnsembleResults, which makes the key safe for caching
// (gvad's ensemble cache and request coalescing are the intended
// consumers). The leading tag byte keeps ensemble keys disjoint from
// detector Fingerprints even for identical series.
func EnsembleFingerprint(ts []float64, opts EnsembleOptions) string {
	members := opts.Members
	if members <= 0 {
		members = ensemble.DefaultMembers
	}
	h := sha256.New()
	hdr := [1 + 8*2]byte{'E'}
	binary.LittleEndian.PutUint64(hdr[1:], uint64(members))
	binary.LittleEndian.PutUint64(hdr[9:], uint64(opts.Seed))
	h.Write(hdr[:])
	var buf [8 * 512]byte
	fill := 0
	for _, v := range ts {
		binary.LittleEndian.PutUint64(buf[8*fill:], math.Float64bits(v))
		fill++
		if fill == 512 {
			h.Write(buf[:])
			fill = 0
		}
	}
	h.Write(buf[:8*fill])
	return hex.EncodeToString(h.Sum(nil))
}
