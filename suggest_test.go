package grammarviz

import (
	"testing"
)

func TestSuggestOptions(t *testing.T) {
	ts := testSeries(1500, 60, 800, 60, 11)
	opts, err := SuggestOptions(ts)
	if err != nil {
		t.Fatalf("SuggestOptions: %v", err)
	}
	if opts.Window < 55 || opts.Window > 65 {
		t.Errorf("suggested window = %d, want ~60", opts.Window)
	}
	// The suggestion must be directly usable.
	det, err := New(ts, opts)
	if err != nil {
		t.Fatalf("New with suggestion: %v", err)
	}
	discords, err := det.Discords(1)
	if err != nil {
		t.Fatalf("Discords: %v", err)
	}
	planted := Interval{Start: 740, End: 920}
	if !discords[0].Interval().Overlaps(planted) {
		t.Errorf("auto-parameterized discord %v misses %v", discords[0].Interval(), planted)
	}
}

func TestSuggestOptionsNoCycle(t *testing.T) {
	if _, err := SuggestOptions(make([]float64, 500)); err == nil {
		t.Error("constant series should error")
	}
}
