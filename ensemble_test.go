package grammarviz

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestEnsembleDensityAPI(t *testing.T) {
	ts := testSeries(3000, 100, 1500, 120, 21)
	res, err := EnsembleDensity(ts, EnsembleOptions{})
	if err != nil {
		t.Fatalf("EnsembleDensity: %v", err)
	}
	if len(res.Score) != len(ts) || len(res.Agreement) != len(ts) {
		t.Fatalf("curve lengths %d/%d, want %d", len(res.Score), len(res.Agreement), len(ts))
	}
	if res.Used == 0 || res.Used > len(res.Members) {
		t.Fatalf("Used = %d of %d members", res.Used, len(res.Members))
	}

	// Ctx variant with a live context is byte-identical, for any workers.
	ctxRes, err := EnsembleDensityCtx(context.Background(), ts, EnsembleOptions{Workers: 3})
	if err != nil {
		t.Fatalf("EnsembleDensityCtx: %v", err)
	}
	if !reflect.DeepEqual(ctxRes, res) {
		t.Error("EnsembleDensityCtx result differs from EnsembleDensity")
	}

	// The planted anomaly is found by thresholding the fused curve.
	anomalies := res.Anomalies(0.3)
	if len(anomalies) == 0 {
		t.Fatal("Anomalies(0.3) found nothing")
	}
	hit := false
	for _, iv := range anomalies {
		if iv.End >= 1400 && iv.Start <= 1620 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no anomaly interval near the planted region [1500, 1620): %v", anomalies)
	}

	// Degenerate input surfaces the typed error.
	if _, err := EnsembleDensity([]float64{1, 2}, EnsembleOptions{}); !errors.Is(err, ErrNoEnsembleMembers) {
		t.Errorf("tiny series err = %v, want ErrNoEnsembleMembers", err)
	}

	// Cancelled context aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EnsembleDensityCtx(ctx, ts, EnsembleOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx err = %v, want context.Canceled", err)
	}
}

func TestEnsembleFingerprint(t *testing.T) {
	a := testSeries(1000, 50, 500, 50, 1)
	b := testSeries(1000, 50, 500, 50, 2)

	base := EnsembleFingerprint(a, EnsembleOptions{})
	if base != EnsembleFingerprint(a, EnsembleOptions{}) {
		t.Error("fingerprint not stable across calls")
	}
	// Workers must not influence the key; the member default must.
	if EnsembleFingerprint(a, EnsembleOptions{Workers: 7}) != base {
		t.Error("Workers changed the fingerprint")
	}
	if EnsembleFingerprint(a, EnsembleOptions{Members: 20}) != base {
		t.Error("explicit default member count produced a different key than the implicit default")
	}
	distinct := map[string]bool{base: true}
	for _, opts := range []EnsembleOptions{{Members: 8}, {Seed: 5}, {Members: 8, Seed: 5}} {
		fp := EnsembleFingerprint(a, opts)
		if distinct[fp] {
			t.Errorf("options %+v collided with a previous fingerprint", opts)
		}
		distinct[fp] = true
	}
	if EnsembleFingerprint(b, EnsembleOptions{}) == base {
		t.Error("different series produced the same fingerprint")
	}
	// Ensemble keys must stay disjoint from detector fingerprints on the
	// same series: both feed the same serving cache.
	if Fingerprint(a, Options{}) == base {
		t.Error("ensemble fingerprint collides with the detector fingerprint")
	}
}
